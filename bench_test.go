// Benchmarks regenerating the paper's evaluation figures (Section 5) and the
// ablations called out in DESIGN.md. Each BenchmarkFigN_* runs the harness
// for that figure on a reduced dataset and reports the headline quantity of
// the figure as a custom metric, so `go test -bench=. -benchmem` reproduces
// the whole evaluation at laptop scale. For the full-size tables use
// `go run ./cmd/dppr-bench`.
package dynppr_test

import (
	"sync"
	"testing"

	"dynppr"
	"dynppr/internal/bench"
	"dynppr/internal/gen"
	"dynppr/internal/push"
)

// benchParams returns harness parameters sized for benchmarking: one small
// power-law dataset, a handful of slides per measurement.
func benchParams() (bench.Params, []gen.Dataset) {
	p := bench.QuickParams()
	p.Slides = 5
	p.Epsilon = 1e-6
	p.Workers = 0
	datasets := []gen.Dataset{
		{Config: gen.Config{Name: "bench-rmat", Model: gen.RMAT, Vertices: 2000, Edges: 30000, Seed: 7}},
	}
	return p, datasets
}

// BenchmarkFig4_OptimizationEffect regenerates Figure 4: latency of the four
// parallel-push variants. Reported metric: speedup of Opt over Vanilla.
func BenchmarkFig4_OptimizationEffect(b *testing.B) {
	p, ds := benchParams()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunOptimizationEffect(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "Opt" {
				speedup = r.SpeedupOverVanilla
			}
		}
	}
	b.ReportMetric(speedup, "opt-speedup-vs-vanilla")
}

// BenchmarkFig5_Throughput regenerates Figure 5: streaming throughput of
// every approach. Reported metrics: CPU-MT and CPU-Seq edges/sec at the
// largest batch size.
func BenchmarkFig5_Throughput(b *testing.B) {
	p, ds := benchParams()
	var mt, seq float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunThroughput(p, ds, []bench.Approach{
			bench.ApproachSeq, bench.ApproachMT, bench.ApproachLigra, bench.ApproachMonteCarlo,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Approach {
			case bench.ApproachMT:
				mt = r.EdgesPerSecond
			case bench.ApproachSeq:
				seq = r.EdgesPerSecond
			}
		}
	}
	b.ReportMetric(mt, "mt-edges/sec")
	b.ReportMetric(seq, "seq-edges/sec")
}

// BenchmarkFig6_Epsilon regenerates Figure 6: latency as ε tightens.
func BenchmarkFig6_Epsilon(b *testing.B) {
	p, ds := benchParams()
	p.EpsilonGrid = []float64{1e-4, 1e-6}
	var tight float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunEpsilonSweep(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Approach == bench.ApproachMT && r.Epsilon == 1e-6 {
				tight = float64(r.MeanLatency.Microseconds())
			}
		}
	}
	b.ReportMetric(tight, "mt-latency-us@1e-6")
}

// BenchmarkFig7_SourceDegree regenerates Figure 7: latency by source-degree
// bucket.
func BenchmarkFig7_SourceDegree(b *testing.B) {
	p, ds := benchParams()
	var highDeg float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunSourceDegree(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Approach == bench.ApproachMT {
				highDeg = float64(r.MeanLatency.Microseconds())
				break
			}
		}
	}
	b.ReportMetric(highDeg, "mt-latency-us-top-bucket")
}

// BenchmarkFig8_BatchSize regenerates Figure 8: latency across batch ratios.
func BenchmarkFig8_BatchSize(b *testing.B) {
	p, ds := benchParams()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunBatchSize(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Approach == bench.ApproachMT && r.Ratio == p.BatchRatios[0] {
				speedup = r.SpeedupOverSeq
			}
		}
	}
	b.ReportMetric(speedup, "mt-speedup-vs-seq@largest-batch")
}

// BenchmarkFig9_Resource regenerates Figure 9: resource-consumption proxies
// across batch sizes. Reported metric: mean frontier occupancy at the largest
// batch size (the warp-occupancy proxy).
func BenchmarkFig9_Resource(b *testing.B) {
	p, ds := benchParams()
	var occupancy float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunResourceProfile(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			occupancy = rows[0].MeanFrontier
		}
	}
	b.ReportMetric(occupancy, "mean-frontier@largest-batch")
}

// BenchmarkFig10_Scalability regenerates Figure 10: throughput versus worker
// count. Reported metric: speedup of the largest worker count over one
// worker.
func BenchmarkFig10_Scalability(b *testing.B) {
	p, ds := benchParams()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunScalability(p, ds)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) > 0 {
			speedup = rows[len(rows)-1].SpeedupOverOneWorker
		}
	}
	b.ReportMetric(speedup, "speedup-max-vs-1-worker")
}

// ---------------------------------------------------------------------------
// Ablation and micro benchmarks on the public API.

func buildBenchWorkload(b *testing.B, vertices, edges int) ([]dynppr.Edge, *dynppr.Graph, dynppr.VertexID) {
	return buildBenchWorkloadSplit(b, vertices, edges, edges*9/10)
}

// buildBenchWorkloadSplit generates the R-MAT universe and seeds the graph
// with the first split edges; the remainder becomes the mutation batch.
func buildBenchWorkloadSplit(b *testing.B, vertices, edges, split int) ([]dynppr.Edge, *dynppr.Graph, dynppr.VertexID) {
	b.Helper()
	all, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "micro", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := dynppr.GraphFromEdges(all[:split])
	source := g.TopDegreeVertices(1)[0]
	return all[split:], g, source
}

func benchmarkTrackerBatch(b *testing.B, opts dynppr.Options) {
	benchmarkTrackerBatchSized(b, opts, 3000, 60000)
}

func benchmarkTrackerBatchSized(b *testing.B, opts dynppr.Options, vertices, edges int) {
	benchmarkTrackerBatchSplit(b, opts, vertices, edges, edges*9/10)
}

func benchmarkTrackerBatchSplit(b *testing.B, opts dynppr.Options, vertices, edges, split int) {
	inserts, g, source := buildBenchWorkloadSplit(b, vertices, edges, split)
	tracker, err := dynppr.NewTracker(g, source, opts)
	if err != nil {
		b.Fatal(err)
	}
	// Build one insert batch and one compensating delete batch so the graph
	// returns to its original state every two iterations; this keeps the
	// measured work stable across b.N.
	insertBatch := make(dynppr.Batch, 0, len(inserts))
	deleteBatch := make(dynppr.Batch, 0, len(inserts))
	for _, e := range inserts {
		insertBatch = append(insertBatch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
		deleteBatch = append(deleteBatch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			tracker.ApplyBatch(insertBatch)
		} else {
			tracker.ApplyBatch(deleteBatch)
		}
	}
	b.ReportMetric(float64(len(insertBatch)), "updates/batch")
}

// BenchmarkAblation_EagerPropagation quantifies the benefit of eager
// propagation: Opt versus DupDetect-only (Table 3 column difference).
func BenchmarkAblation_EagerPropagation(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant dynppr.Variant
	}{
		{"eager-on", dynppr.VariantOpt},
		{"eager-off", dynppr.VariantDupDetect},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := dynppr.DefaultOptions()
			opts.Epsilon = 1e-6
			opts.Variant = v.variant
			benchmarkTrackerBatch(b, opts)
		})
	}
}

// BenchmarkAblation_LocalDuplicateDetection quantifies the benefit of local
// duplicate detection: Opt versus Eager-only.
func BenchmarkAblation_LocalDuplicateDetection(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant dynppr.Variant
	}{
		{"localdup-on", dynppr.VariantOpt},
		{"localdup-off", dynppr.VariantEager},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := dynppr.DefaultOptions()
			opts.Epsilon = 1e-6
			opts.Variant = v.variant
			benchmarkTrackerBatch(b, opts)
		})
	}
}

// BenchmarkAblation_ParallelLoss compares the vanilla parallel push against
// the sequential push on identical batches — the runtime counterpart of
// Lemma 4.
func BenchmarkAblation_ParallelLoss(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		opts := dynppr.DefaultOptions()
		opts.Engine = dynppr.EngineSequential
		opts.Epsilon = 1e-6
		benchmarkTrackerBatch(b, opts)
	})
	b.Run("parallel-vanilla", func(b *testing.B) {
		opts := dynppr.DefaultOptions()
		opts.Variant = dynppr.VariantVanilla
		opts.Epsilon = 1e-6
		benchmarkTrackerBatch(b, opts)
	})
	b.Run("parallel-opt", func(b *testing.B) {
		opts := dynppr.DefaultOptions()
		opts.Variant = dynppr.VariantOpt
		opts.Epsilon = 1e-6
		benchmarkTrackerBatch(b, opts)
	})
}

// BenchmarkAblation_SortAggregate compares the atomic neighbor-update method
// against the sorting-and-aggregate alternative the paper describes and
// rejects in Section 3.1 (footnote 2) — measured here at the engine level on
// cold-start convergence, where frontiers are largest.
func BenchmarkAblation_SortAggregate(b *testing.B) {
	_, g, source := buildBenchWorkload(b, 3000, 60000)
	cfg := push.Config{Alpha: 0.15, Epsilon: 1e-6}
	run := func(b *testing.B, engine push.Engine) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := push.NewState(g.Clone(), source, cfg)
			if err != nil {
				b.Fatal(err)
			}
			engine.Run(st, []dynppr.VertexID{source})
		}
	}
	b.Run("atomic", func(b *testing.B) { run(b, push.NewParallel(push.VariantVanilla, 0)) })
	b.Run("sort-aggregate", func(b *testing.B) { run(b, push.NewSortAggregate(0)) })
}

// BenchmarkEngine_BatchVsSingleUpdate compares batch processing against
// per-update processing (CPU-Seq vs CPU-Base), the paper's first claim.
func BenchmarkEngine_BatchVsSingleUpdate(b *testing.B) {
	for _, m := range []struct {
		name string
		mode dynppr.UpdateMode
	}{
		{"batch", dynppr.BatchMode},
		{"single-update", dynppr.SingleUpdateMode},
	} {
		b.Run(m.name, func(b *testing.B) {
			opts := dynppr.DefaultOptions()
			opts.Engine = dynppr.EngineSequential
			opts.Mode = m.mode
			opts.Epsilon = 1e-6
			benchmarkTrackerBatch(b, opts)
		})
	}
}

// BenchmarkEngine_VertexCentric measures the Ligra-style baseline on the same
// workload as the specialized engines.
func BenchmarkEngine_VertexCentric(b *testing.B) {
	opts := dynppr.DefaultOptions()
	opts.Engine = dynppr.EngineVertexCentric
	opts.Epsilon = 1e-6
	benchmarkTrackerBatch(b, opts)
}

// BenchmarkBatchApplyEngines is the PR 3 performance-trajectory benchmark
// (BENCH_PR3.json): batch apply on a large synthetic workload, sequential
// versus the deterministic parallel engine versus the atomic parallel
// engine. Run it with `-cpu 1,4` so GOMAXPROCS 1 and 4 both appear in the
// stream; the CI gate asserts that deterministic-at-4 beats sequential-at-4
// by at least 1.5x and diffs the whole stream against the committed
// baseline with dppr-benchdiff.
func BenchmarkBatchApplyEngines(b *testing.B) {
	for _, e := range []struct {
		name   string
		engine dynppr.EngineKind
	}{
		{"sequential", dynppr.EngineSequential},
		{"deterministic", dynppr.EngineDeterministic},
		{"parallel-opt", dynppr.EngineParallel},
	} {
		b.Run("engine="+e.name, func(b *testing.B) {
			opts := dynppr.DefaultOptions()
			opts.Engine = e.engine
			opts.Epsilon = 1e-6
			// Workers/Parallelism 0 = GOMAXPROCS, so -cpu drives the
			// degree of parallelism.
			benchmarkTrackerBatchSized(b, opts, 10000, 200000)
		})
	}
}

// BenchmarkBatchApplyEngines10M is the storage-engine scale point: the same
// batch-apply measurement as BenchmarkBatchApplyEngines but on a 1M-vertex /
// 10M-edge R-MAT graph with ~20k-update batches — large enough that the
// graph's CSR base no longer fits in cache and the LSM delta/compaction
// machinery, not the push arithmetic, decides the steady-state throughput.
// ε is relaxed to 1e-4 to keep the cold start affordable; the per-batch push
// work is still millions of edge traversals. Run with -benchtime 1x (each
// iteration applies a full 20k-update batch).
func BenchmarkBatchApplyEngines10M(b *testing.B) {
	const (
		vertices = 1_000_000
		edges    = 10_000_000
		batch    = 20_000
	)
	b.Run("engine=deterministic", func(b *testing.B) {
		opts := dynppr.DefaultOptions()
		opts.Engine = dynppr.EngineDeterministic
		opts.Epsilon = 1e-4
		benchmarkTrackerBatchSplit(b, opts, vertices, edges, edges-batch)
	})
}

// topKBench holds the lazily built 200k-vertex serving pair shared by the
// BenchmarkTopK subbenchmarks: one service with the incremental Top-K index,
// one with the index disabled (the dense-scan baseline), both converged over
// the same R-MAT graph with a small batch applied so the read path sees a
// post-batch snapshot.
var topKBench struct {
	once    sync.Once
	indexed *dynppr.Service
	dense   *dynppr.Service
	source  dynppr.VertexID
	err     error
}

func topKBenchSetup() {
	const vertices, edges = 200_000, 1_000_000
	all, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "topk-bench", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: 11,
	})
	if err != nil {
		topKBench.err = err
		return
	}
	split := edges - 200
	opts := dynppr.DefaultOptions()
	opts.Engine = dynppr.EngineDeterministic
	opts.Epsilon = 1e-4
	batch := make(dynppr.Batch, 0, edges-split)
	for _, e := range all[split:] {
		batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
	}
	build := func(topKCap int) (*dynppr.Service, dynppr.VertexID, error) {
		g := dynppr.GraphFromEdges(all[:split])
		source := g.TopDegreeVertices(1)[0]
		svc, err := dynppr.NewService(g, []dynppr.VertexID{source}, dynppr.ServiceOptions{
			Options: opts, PoolWorkers: 1, TopKCap: topKCap,
		})
		if err != nil {
			return nil, 0, err
		}
		if _, err := svc.ApplyBatch(batch); err != nil {
			svc.Close()
			return nil, 0, err
		}
		return svc, source, nil
	}
	if topKBench.indexed, topKBench.source, topKBench.err = build(0); topKBench.err != nil {
		return
	}
	topKBench.dense, _, topKBench.err = build(-1)
}

// BenchmarkTopK contrasts the two TopK read paths on a 200k-vertex R-MAT
// workload: path=indexed serves from the incrementally maintained Top-K
// index embedded in the snapshot (O(k)), path=dense is the heap scan over
// the full estimate vector (O(n log k)) that every query paid before. The
// CI gate (dppr-benchdiff -slow dense -fast indexed) asserts the speedup;
// both paths recycle the result buffer, so the steady state is 0 allocs/op.
func BenchmarkTopK(b *testing.B) {
	topKBench.once.Do(topKBenchSetup)
	if topKBench.err != nil {
		b.Fatal(topKBench.err)
	}
	for _, path := range []struct {
		name string
		svc  *dynppr.Service
	}{
		{"indexed", topKBench.indexed},
		{"dense", topKBench.dense},
	} {
		b.Run("path="+path.name, func(b *testing.B) {
			var buf []dynppr.VertexScore
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _, err = path.svc.AppendTopK(buf[:0], topKBench.source, 10)
				if err != nil {
					b.Fatal(err)
				}
			}
			if len(buf) != 10 {
				b.Fatalf("got %d results", len(buf))
			}
		})
	}
}

// BenchmarkTrackerColdStart measures from-scratch convergence on a static
// graph (the d/ε term of the complexity bound).
func BenchmarkTrackerColdStart(b *testing.B) {
	_, g, source := buildBenchWorkload(b, 3000, 60000)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynppr.NewTracker(g.Clone(), source, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphMutation measures the raw dynamic-graph substrate.
func BenchmarkGraphMutation(b *testing.B) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "mut", Model: dynppr.ModelErdosRenyi, Vertices: 10000, Edges: 100000, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := dynppr.NewGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if g.HasEdge(e.U, e.V) {
			if err := g.RemoveEdge(e.U, e.V); err != nil {
				b.Fatal(err)
			}
		} else if _, err := g.AddEdge(e.U, e.V); err != nil {
			b.Fatal(err)
		}
	}
}
