package dynppr_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dynppr"
)

// deleteHeavyStream builds a deterministic stream where half of every batch
// deletes edges inserted so far — the workload that grows tombstone-shaped
// delta segments fastest.
func deleteHeavyStream(universe []dynppr.Edge, seed int64, batches, batchSize int) []dynppr.Batch {
	rng := rand.New(rand.NewSource(seed))
	var present []dynppr.Edge
	out := make([]dynppr.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(dynppr.Batch, 0, batchSize)
		for i := 0; i < batchSize; i++ {
			if len(present) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(present))
				e := present[j]
				present = append(present[:j], present[j+1:]...)
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
			} else {
				e := universe[rng.Intn(len(universe))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
				present = append(present, e)
			}
		}
		out = append(out, batch)
	}
	return out
}

// slidingWindowStream models the paper's sliding-window graph: every insert
// past the window capacity evicts the oldest live edge, so the graph churns
// at a steady size and every vertex's adjacency is rewritten over time.
func slidingWindowStream(universe, initial []dynppr.Edge, window, batches, batchSize int) []dynppr.Batch {
	live := append([]dynppr.Edge(nil), initial...)
	idx := 0
	out := make([]dynppr.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		batch := make(dynppr.Batch, 0, 2*batchSize)
		for i := 0; i < batchSize; i++ {
			e := universe[idx%len(universe)]
			idx++
			batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
			live = append(live, e)
			if len(live) > window {
				old := live[0]
				live = live[1:]
				batch = append(batch, dynppr.Update{U: old.U, V: old.V, Op: dynppr.Delete})
			}
		}
		out = append(out, batch)
	}
	return out
}

// TestCompactionDifferential is the storage engine's end-to-end bit-identity
// gate: two deterministic services replay the same stream, one compacting
// aggressively (background merges racing the write pipeline, inline merges,
// an explicit mid-stream CompactNow), the other never compacting. After
// every batch their published estimates and Top-K rankings must agree to the
// bit, and at the end their checkpoints — estimates, residuals, snapshot
// epochs, and the compacted CSR image — must be byte-identical. Runs at
// parallelism 1 and 4; the -race runs in CI double as the data-race check on
// the background compactor.
func TestCompactionDifferential(t *testing.T) {
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 300, Edges: 2400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	initial := universe[:1200]
	sources := dynppr.GraphFromEdges(initial).TopDegreeVertices(3)

	const (
		batches   = 12
		batchSize = 60
	)
	scenarios := []struct {
		name   string
		stream []dynppr.Batch
	}{
		{"delete-heavy", deleteHeavyStream(universe, 99, batches, batchSize)},
		{"sliding-window", slidingWindowStream(universe, initial, len(initial), batches, batchSize)},
	}

	for _, par := range []int{1, 4} {
		for _, sc := range scenarios {
			sc := sc
			t.Run(sc.name+parSuffix(par), func(t *testing.T) {
				opts := dynppr.DefaultOptions()
				opts.Engine = dynppr.EngineDeterministic
				opts.Epsilon = 1e-5
				opts.Workers = par
				opts.Parallelism = par
				build := func(compactAfter int, dir string) *dynppr.Service {
					so := dynppr.ServiceOptions{
						Options:                opts,
						PoolWorkers:            par,
						CompactAfterDeltaEdges: compactAfter,
					}
					svc, err := dynppr.NewPersistentService(
						dynppr.GraphFromEdges(initial), sources, so,
						dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncNone})
					if err != nil {
						t.Fatal(err)
					}
					return svc
				}
				// A 64-entry trigger fires the background merge on nearly
				// every batch and the 4× inline path whenever the merge
				// falls behind; -1 never compacts outside checkpoints.
				dirOn, dirOff := t.TempDir(), t.TempDir()
				on := build(64, dirOn)
				defer on.Close()
				off := build(-1, dirOff)
				defer off.Close()

				for b, batch := range sc.stream {
					rOn, err := on.ApplyBatch(batch)
					if err != nil {
						t.Fatal(err)
					}
					rOff, err := off.ApplyBatch(batch)
					if err != nil {
						t.Fatal(err)
					}
					if rOn.Applied != rOff.Applied {
						t.Fatalf("batch %d: applied %d vs %d", b, rOn.Applied, rOff.Applied)
					}
					compareServiceState(t, on, off, sources, b)
					if b == len(sc.stream)/2 {
						if err := on.CompactNow(); err != nil {
							t.Fatal(err)
						}
						compareServiceState(t, on, off, sources, b)
					}
				}
				if comps := on.Stats().Storage.Compactions; comps == 0 {
					t.Fatal("compacting service never compacted — the differential proved nothing")
				}

				// Checkpointing compacts both graphs; with identical logical
				// state, identical adjacency order and identical per-source
				// floats the two files must match byte for byte.
				if _, err := on.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if _, err := off.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				fOn, err := os.ReadFile(filepath.Join(dirOn, "checkpoint"))
				if err != nil {
					t.Fatal(err)
				}
				fOff, err := os.ReadFile(filepath.Join(dirOff, "checkpoint"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fOn, fOff) {
					t.Fatal("checkpoints diverged: compaction is not state-invisible")
				}
			})
		}
	}
}

func parSuffix(par int) string {
	if par == 1 {
		return "/par=1"
	}
	return "/par=4"
}

// compareServiceState asserts bit-identical published estimates and Top-K
// rankings across the two services for every tracked source.
func compareServiceState(t *testing.T, on, off *dynppr.Service, sources []dynppr.VertexID, batch int) {
	t.Helper()
	for _, src := range sources {
		eOn, err := on.Estimates(src)
		if err != nil {
			t.Fatal(err)
		}
		eOff, err := off.Estimates(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(eOn) != len(eOff) {
			t.Fatalf("batch %d source %d: vector lengths %d vs %d", batch, src, len(eOn), len(eOff))
		}
		for v := range eOn {
			if math.Float64bits(eOn[v]) != math.Float64bits(eOff[v]) {
				t.Fatalf("batch %d source %d vertex %d: %g vs %g (bit mismatch)",
					batch, src, v, eOn[v], eOff[v])
			}
		}
		tOn, err := on.TopK(src, 10)
		if err != nil {
			t.Fatal(err)
		}
		tOff, err := off.TopK(src, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(tOn) != len(tOff) {
			t.Fatalf("batch %d source %d: top-k lengths %d vs %d", batch, src, len(tOn), len(tOff))
		}
		for i := range tOn {
			if tOn[i].Vertex != tOff[i].Vertex ||
				math.Float64bits(tOn[i].Score) != math.Float64bits(tOff[i].Score) {
				t.Fatalf("batch %d source %d rank %d: (%d,%g) vs (%d,%g)",
					batch, src, i, tOn[i].Vertex, tOn[i].Score, tOff[i].Vertex, tOff[i].Score)
			}
		}
	}
}
