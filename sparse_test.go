// Differential tests of the sparse hot paths: delta snapshot publication
// and the incrementally maintained Top-K index must be bit-identical to a
// full-recompute oracle — across delete-heavy and sliding-window workloads,
// deterministic-engine parallelism 1 and 4, and a checkpoint/recovery
// restart.
package dynppr_test

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"dynppr"
)

// sameBits compares two float64 slices for exact bit-level equality.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sparseDeleteHeavyScenario is the delete-heavy workload at a size where
// batches touch a small fraction of the graph, so the delta publication path
// actually engages (the tiny differential scenarios always fall back to full
// copies by the density heuristic).
func sparseDeleteHeavyScenario(t *testing.T) (initial []dynppr.Edge, sources []dynppr.VertexID, stream []dynppr.Batch) {
	t.Helper()
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelBarabasiAlbert, Vertices: 2000, Edges: 12000, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	sources = dynppr.GraphFromEdges(universe).TopDegreeVertices(3)
	rng := rand.New(rand.NewSource(72))
	present := append([]dynppr.Edge(nil), universe...)
	for b := 0; b < 8; b++ {
		batch := make(dynppr.Batch, 0, 60)
		for i := 0; i < 60; i++ {
			if len(present) > 0 && rng.Intn(4) != 0 {
				idx := rng.Intn(len(present))
				e := present[idx]
				present = append(present[:idx], present[idx+1:]...)
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
			} else {
				e := universe[rng.Intn(len(universe))]
				batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Insert})
				present = append(present, e)
			}
		}
		stream = append(stream, batch)
	}
	return universe, sources, stream
}

// sparseSlidingWindowScenario slides a small window across a large edge
// stream: every batch is half inserts, half deletes.
func sparseSlidingWindowScenario(t *testing.T) (initial []dynppr.Edge, sources []dynppr.VertexID, stream []dynppr.Batch) {
	t.Helper()
	universe, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 8000, Edges: 48000, Seed: 73,
	})
	if err != nil {
		t.Fatal(err)
	}
	window, initial := dynppr.NewSlidingWindow(dynppr.NewStream(universe, 74), 0.5)
	sources = dynppr.GraphFromEdges(initial).TopDegreeVertices(3)
	for len(stream) < 12 {
		b := window.Slide(30)
		if len(b) == 0 {
			break
		}
		stream = append(stream, b)
	}
	if len(stream) < 8 {
		t.Fatalf("expected a long slide sequence, got %d batches", len(stream))
	}
	return initial, sources, stream
}

// sparseOracles builds one full-recompute oracle Tracker per source: an
// independent deterministic-engine tracker over its own copy of the graph,
// fed the same batches. Its live estimate vector is what every published
// snapshot must match bit for bit.
func sparseOracles(t *testing.T, initial []dynppr.Edge, sources []dynppr.VertexID, epsilon float64) []*dynppr.Tracker {
	t.Helper()
	oracles := make([]*dynppr.Tracker, len(sources))
	for i, s := range sources {
		opts := dynppr.DefaultOptions()
		opts.Engine = dynppr.EngineDeterministic
		opts.Epsilon = epsilon
		opts.Parallelism = 1
		tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(initial), s, opts)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = tr
	}
	return oracles
}

// compareServiceToOracles asserts that every source's published snapshot —
// estimates and Top-K at depths inside, at, and beyond the index capacity —
// is bit-identical to its oracle tracker.
func compareServiceToOracles(t *testing.T, svc *dynppr.Service, sources []dynppr.VertexID, oracles []*dynppr.Tracker, topKCap int, tag string) {
	t.Helper()
	for i, s := range sources {
		want := oracles[i].Estimates()
		got, err := svc.Estimates(s)
		if err != nil {
			t.Fatalf("%s: source %d: %v", tag, s, err)
		}
		if !sameBits(got, want) {
			t.Fatalf("%s: source %d: published estimates diverge from full-recompute oracle", tag, s)
		}
		for _, k := range []int{1, topKCap / 2, topKCap, topKCap + 9, len(want)} {
			gotTop, err := svc.TopK(s, k)
			if err != nil {
				t.Fatalf("%s: source %d k=%d: %v", tag, s, k, err)
			}
			wantTop := fullSortTopK(want, k)
			if len(gotTop) != len(wantTop) {
				t.Fatalf("%s: source %d k=%d: %d entries, want %d", tag, s, k, len(gotTop), len(wantTop))
			}
			for j := range wantTop {
				if gotTop[j] != wantTop[j] {
					t.Fatalf("%s: source %d k=%d: top[%d] = %+v, want %+v",
						tag, s, k, j, gotTop[j], wantTop[j])
				}
			}
		}
	}
}

// requireDeltaPublishes asserts the delta publication path carried real
// traffic — otherwise the suite silently degrades to testing full copies.
func requireDeltaPublishes(t *testing.T, svc *dynppr.Service) {
	t.Helper()
	var full, delta uint64
	for _, ss := range svc.Stats().Sources {
		full += ss.FullPublishes
		delta += ss.DeltaPublishes
	}
	if delta == 0 {
		t.Fatalf("delta publication path never engaged (full=%d delta=%d)", full, delta)
	}
}

// TestSparseServingDifferential replays the delete-heavy and sliding-window
// workloads through Services at deterministic-engine parallelism 1 and 4
// and asserts, after every batch, that the delta-published snapshots and the
// incremental Top-K index are bit-identical to full-recompute oracles.
func TestSparseServingDifferential(t *testing.T) {
	const epsilon = 1e-4
	const topKCap = 12
	scenarios := []struct {
		name  string
		build func(*testing.T) ([]dynppr.Edge, []dynppr.VertexID, []dynppr.Batch)
	}{
		{"delete-heavy", sparseDeleteHeavyScenario},
		{"sliding-window", sparseSlidingWindowScenario},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			initial, sources, stream := sc.build(t)
			for _, par := range []int{1, 4} {
				par := par
				t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
					opts := dynppr.DefaultOptions()
					opts.Engine = dynppr.EngineDeterministic
					opts.Epsilon = epsilon
					opts.Parallelism = par
					svc, err := dynppr.NewService(dynppr.GraphFromEdges(initial), sources, dynppr.ServiceOptions{
						Options: opts, PoolWorkers: 2, TopKCap: topKCap,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer svc.Close()
					oracles := sparseOracles(t, initial, sources, epsilon)
					for b, batch := range stream {
						if _, err := svc.ApplyBatch(batch); err != nil {
							t.Fatal(err)
						}
						for _, tr := range oracles {
							tr.ApplyBatch(batch)
						}
						compareServiceToOracles(t, svc, sources, oracles, topKCap, fmt.Sprintf("batch %d", b))
					}
					requireDeltaPublishes(t, svc)
				})
			}
		})
	}
}

// TestSparseServingAcrossRecovery checks the restart story: a persistent
// service is checkpointed mid-stream, mutated further, closed, and
// recovered — the recovered service's snapshots and Top-K must still be
// bit-identical to the never-crashed oracle, before and after post-recovery
// writes, and its first publications must be full copies (a restored state
// has no delta history to trust).
func TestSparseServingAcrossRecovery(t *testing.T) {
	const epsilon = 1e-4
	const topKCap = 12
	initial, sources, stream := sparseDeleteHeavyScenario(t)
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "data")
			opts := dynppr.DefaultOptions()
			opts.Engine = dynppr.EngineDeterministic
			opts.Epsilon = epsilon
			opts.Parallelism = par
			so := dynppr.ServiceOptions{Options: opts, PoolWorkers: 2, TopKCap: topKCap}
			po := dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncNone}

			svc, err := dynppr.NewPersistentService(dynppr.GraphFromEdges(initial), sources, so, po)
			if err != nil {
				t.Fatal(err)
			}
			oracles := sparseOracles(t, initial, sources, epsilon)

			half := len(stream) / 2
			for _, batch := range stream[:half] {
				if _, err := svc.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
				for _, tr := range oracles {
					tr.ApplyBatch(batch)
				}
			}
			if _, err := svc.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			for _, batch := range stream[half:] {
				if _, err := svc.ApplyBatch(batch); err != nil {
					t.Fatal(err)
				}
				for _, tr := range oracles {
					tr.ApplyBatch(batch)
				}
			}
			compareServiceToOracles(t, svc, sources, oracles, topKCap, "pre-restart")
			requireDeltaPublishes(t, svc)
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := dynppr.NewServiceFromRecovery(so, po)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			compareServiceToOracles(t, rec, sources, oracles, topKCap, "post-restart")
			for _, ss := range rec.Stats().Sources {
				if ss.FullPublishes == 0 {
					t.Fatalf("recovered source %d reseeded without a full publish", ss.Source)
				}
			}

			// The recovered service keeps absorbing writes on the sparse path.
			extra := stream[len(stream)-1]
			if _, err := rec.ApplyBatch(extra); err != nil {
				t.Fatal(err)
			}
			for _, tr := range oracles {
				tr.ApplyBatch(extra)
			}
			compareServiceToOracles(t, rec, sources, oracles, topKCap, "post-restart-write")
		})
	}
}
