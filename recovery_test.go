package dynppr

// Crash-recovery differential tests: the durability contract of the
// persistent Service is that a recovery from checkpoint + WAL replay is
// indistinguishable — bit for bit, under EngineDeterministic — from a
// process that was simply fed the surviving prefix of the update stream and
// never crashed. The tests simulate crashes by truncating the WAL at every
// record boundary and at torn positions inside records (mid-frame,
// mid-payload, inside the checksum), recover, and compare estimates,
// residuals and snapshot epochs against oracle Trackers.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dynppr/internal/wal"
)

// recoveryWorkload builds a deterministic initial graph and update-batch
// sequence: a sliding window over an R-MAT edge stream, so every batch mixes
// insertions of arriving edges with deletions of expiring ones.
func recoveryWorkload(t *testing.T, vertices, edges, batches, slide int) ([]Edge, []Batch) {
	t.Helper()
	all, err := GenerateEdges(SyntheticConfig{
		Name: "recovery", Model: ModelRMAT, Vertices: vertices, Edges: edges, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(all, 23)
	window, initial := NewSlidingWindow(stream, 0.5)
	out := make([]Batch, 0, batches)
	for i := 0; i < batches; i++ {
		b := window.Slide(slide)
		if len(b) == 0 {
			t.Fatalf("stream exhausted after %d batches", i)
		}
		out = append(out, b)
	}
	return initial, out
}

// bitsEqual compares two float64 vectors for exact bit equality.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sourceState is the oracle's record of one source after a batch prefix.
type sourceState struct {
	estimates []float64
	residuals []float64
}

// oracleStates replays batch prefixes through plain Trackers (one per
// source, each over its own copy of the initial graph) and records the
// exact state after every prefix length k = 0..len(batches).
func oracleStates(t *testing.T, initial []Edge, sources []VertexID, batches []Batch, opts Options) [][]sourceState {
	t.Helper()
	states := make([][]sourceState, len(batches)+1)
	trackers := make([]*Tracker, len(sources))
	for i, s := range sources {
		tr, err := NewTracker(GraphFromEdges(initial), s, opts)
		if err != nil {
			t.Fatal(err)
		}
		trackers[i] = tr
	}
	record := func(k int) {
		states[k] = make([]sourceState, len(trackers))
		for i, tr := range trackers {
			states[k][i] = sourceState{
				estimates: tr.Estimates(),
				residuals: tr.st.Residuals(),
			}
		}
	}
	record(0)
	for k, b := range batches {
		for _, tr := range trackers {
			tr.ApplyBatch(b)
		}
		record(k + 1)
	}
	return states
}

// copyDataDir clones a data directory, optionally truncating the WAL copy to
// walBytes (< 0 keeps it whole) to simulate a crash mid-write.
func copyDataDir(t *testing.T, src string, walBytes int64) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{"checkpoint", "wal.log"} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == "wal.log" && walBytes >= 0 && walBytes < int64(len(data)) {
			data = data[:walBytes]
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// assertRecoveredState checks every source of a recovered service against
// the oracle state for prefix length k: bit-identical estimates and
// residuals, and the exact snapshot epoch (1 cold start + k batches) an
// uncrashed run would serve.
func assertRecoveredState(t *testing.T, svc *Service, sources []VertexID, oracle []sourceState, k int) {
	t.Helper()
	for i, source := range sources {
		src, err := svc.lookup(source)
		if err != nil {
			t.Fatalf("prefix %d: source %d lost in recovery: %v", k, source, err)
		}
		// The pipeline is quiescent (every replay ApplyBatch completed
		// before NewServiceFromRecovery returned), so reading the live
		// state directly is safe.
		if !bitsEqual(src.st.Estimates(), oracle[i].estimates) {
			t.Fatalf("prefix %d: source %d estimates not bit-identical to oracle", k, source)
		}
		if !bitsEqual(src.st.Residuals(), oracle[i].residuals) {
			t.Fatalf("prefix %d: source %d residuals not bit-identical to oracle", k, source)
		}
		info, err := svc.Info(source)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(1 + k); info.Epoch != want {
			t.Fatalf("prefix %d: source %d epoch %d, want %d", k, source, info.Epoch, want)
		}
		if !info.Converged() {
			t.Fatalf("prefix %d: source %d snapshot not converged", k, source)
		}
		est, err := svc.Estimates(source)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(est, oracle[i].estimates) {
			t.Fatalf("prefix %d: source %d served snapshot disagrees with live state", k, source)
		}
	}
}

// TestCrashRecoveryDifferential is the acceptance test of the persistence
// subsystem: a random update stream is journaled, the journal is cut at
// every record boundary and at torn positions inside records, and each cut
// is recovered and compared against an oracle Tracker fed the surviving
// prefix — at deterministic-engine parallelism 1 and 4.
func TestCrashRecoveryDifferential(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			testCrashRecoveryDifferential(t, par)
		})
	}
}

func testCrashRecoveryDifferential(t *testing.T, parallelism int) {
	const batches = 8
	initial, stream := recoveryWorkload(t, 400, 4000, batches, 25)

	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Parallelism = parallelism
	opts.Epsilon = 1e-5
	sources := GraphFromEdges(initial).TopDegreeVertices(2)
	oracle := oracleStates(t, initial, sources, stream, opts)

	so := ServiceOptions{Options: opts, PoolWorkers: 2}
	dir := filepath.Join(t.TempDir(), "data")
	svc, err := NewPersistentService(GraphFromEdges(initial), sources, so, PersistOptions{Dir: dir, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if _, err := svc.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	// The live service must itself agree with the oracle end state.
	assertRecoveredState(t, svc, sources, oracle[batches], batches)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Enumerate crash points from the intact journal's record layout.
	_, records, walSize, err := wal.ScanFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != batches {
		t.Fatalf("journal holds %d records, want %d", len(records), batches)
	}
	type cut struct {
		bytes    int64
		survives int
	}
	cuts := []cut{
		{0, 0},        // whole file torn away (header recreated at the checkpoint LSN)
		{9, 0},        // torn header
		{-1, batches}, // untouched
		{walSize, batches},
	}
	for i, rec := range records {
		end := rec.Offset + int64(rec.EncodedLen)
		cuts = append(cuts,
			cut{rec.Offset, i},      // boundary before record i
			cut{rec.Offset + 3, i},  // torn mid-frame
			cut{rec.Offset + 10, i}, // torn mid-payload
			cut{end - 1, i},         // one byte short
			cut{end, i + 1},         // boundary after record i
		)
	}

	for _, c := range cuts {
		cdir := copyDataDir(t, dir, c.bytes)
		rec, err := NewServiceFromRecovery(so, PersistOptions{Dir: cdir, Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut at %d bytes: recovery failed: %v", c.bytes, err)
		}
		assertRecoveredState(t, rec, sources, oracle[c.survives], c.survives)
		// The recovered service keeps working: the remaining stream applies
		// cleanly and lands on the oracle end state.
		for _, b := range stream[c.survives:] {
			if _, err := rec.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		assertRecoveredState(t, rec, sources, oracle[batches], batches)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryWithCheckpointAndSourceChurn exercises the full record-type
// surface across a restart: batches, a checkpoint mid-stream (rotating the
// WAL), a source added and a source removed — then compares the recovered
// service bit-for-bit against an uncrashed in-memory Service fed the same
// operation sequence, including after a crash that tears the rotated WAL.
func TestRecoveryWithCheckpointAndSourceChurn(t *testing.T) {
	const batches = 9
	initial, stream := recoveryWorkload(t, 300, 3000, batches, 20)

	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Parallelism = 2
	opts.Epsilon = 1e-5
	base := GraphFromEdges(initial).TopDegreeVertices(3)
	sources := base[:2]
	// extra is some vertex distinct from the initial sources.
	extra := VertexID(0)
	for extra == sources[0] || extra == sources[1] {
		extra++
	}
	removed := sources[0]

	// ops replays the same sequence against any Service.
	ops := func(svc *Service, checkpoint func()) error {
		for k, b := range stream {
			if _, err := svc.ApplyBatch(b); err != nil {
				return err
			}
			switch k {
			case 2:
				if err := svc.AddSource(extra); err != nil {
					return err
				}
			case 4:
				checkpoint()
			case 6:
				if err := svc.RemoveSource(removed); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Reference: an in-memory service, never persisted, never crashed.
	ref, err := NewService(GraphFromEdges(initial), sources, ServiceOptions{Options: opts, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ops(ref, func() {}); err != nil {
		t.Fatal(err)
	}

	// Persistent run with a real mid-stream checkpoint.
	dir := filepath.Join(t.TempDir(), "data")
	svc, err := NewPersistentService(GraphFromEdges(initial), sources, ServiceOptions{Options: opts, PoolWorkers: 2},
		PersistOptions{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := ops(svc, func() {
		if _, err := svc.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	compare := func(t *testing.T, got, want *Service) {
		t.Helper()
		gotSrc, wantSrc := got.Sources(), want.Sources()
		if len(gotSrc) != len(wantSrc) {
			t.Fatalf("source sets differ: %v vs %v", gotSrc, wantSrc)
		}
		for i := range gotSrc {
			if gotSrc[i] != wantSrc[i] {
				t.Fatalf("source sets differ: %v vs %v", gotSrc, wantSrc)
			}
			a, ai, err := got.EstimatesInfo(gotSrc[i])
			if err != nil {
				t.Fatal(err)
			}
			b, bi, err := want.EstimatesInfo(gotSrc[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(a, b) {
				t.Fatalf("source %d estimates not bit-identical", gotSrc[i])
			}
			if ai.Epoch != bi.Epoch {
				t.Fatalf("source %d epoch %d, want %d", gotSrc[i], ai.Epoch, bi.Epoch)
			}
		}
	}

	// Full recovery: everything survived (fsync=always, clean close). The
	// WAL holds post-checkpoint records, so this boot must re-checkpoint.
	fullDir := copyDataDir(t, dir, -1)
	rec, err := NewServiceFromRecovery(ServiceOptions{Options: opts, PoolWorkers: 2}, PersistOptions{Dir: fullDir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, rec, ref)
	if ps := rec.Stats().Persistence; ps == nil || ps.Checkpoints != 1 {
		t.Fatalf("recovery with replayed records must re-checkpoint: %+v", ps)
	}
	rec.Close()
	// Recovering the now-clean directory again replays nothing, so the boot
	// skips re-serializing the byte-identical checkpoint it just loaded.
	rec, err = NewServiceFromRecovery(ServiceOptions{Options: opts, PoolWorkers: 2}, PersistOptions{Dir: fullDir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	compare(t, rec, ref)
	if ps := rec.Stats().Persistence; ps == nil || ps.Checkpoints != 0 {
		t.Fatalf("clean restart should not rewrite the checkpoint: %+v", ps)
	}
	rec.Close()

	// Torn rotated WAL: cut the journal after its first post-checkpoint
	// record. The surviving operations are batches 0..5 + the AddSource, so
	// rebuild a reference for exactly that prefix.
	_, records, _, err := wal.ScanFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("rotated WAL holds %d records, want at least 2", len(records))
	}
	cutAt := records[1].Offset // keep exactly one post-checkpoint record (batch 5)
	ref2, err := NewService(GraphFromEdges(initial), sources, ServiceOptions{Options: opts, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref2.Close()
	for k, b := range stream[:6] {
		if _, err := ref2.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if k == 2 {
			if err := ref2.AddSource(extra); err != nil {
				t.Fatal(err)
			}
		}
	}
	rec2, err := NewServiceFromRecovery(ServiceOptions{Options: opts, PoolWorkers: 2}, PersistOptions{Dir: copyDataDir(t, dir, cutAt), Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	compare(t, rec2, ref2)
}

// TestRecoveryOfZeroSourceService guards the empty-source-set corner: a live
// service may remove its last source, and the checkpoint that state produces
// must stay recoverable — recovery boots with zero sources and AddSource
// brings the service back to life.
func TestRecoveryOfZeroSourceService(t *testing.T) {
	initial, stream := recoveryWorkload(t, 200, 1600, 2, 10)
	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Epsilon = 1e-4
	so := ServiceOptions{Options: opts, PoolWorkers: 1}
	sources := GraphFromEdges(initial).TopDegreeVertices(1)
	dir := filepath.Join(t.TempDir(), "data")

	svc, err := NewPersistentService(GraphFromEdges(initial), sources, so, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ApplyBatch(stream[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.RemoveSource(sources[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := NewServiceFromRecovery(so, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("zero-source checkpoint must stay recoverable: %v", err)
	}
	defer rec.Close()
	if got := rec.Sources(); len(got) != 0 {
		t.Fatalf("recovered sources %v, want none", got)
	}
	if _, err := rec.ApplyBatch(stream[1]); err != nil {
		t.Fatal(err)
	}
	if err := rec.AddSource(sources[0]); err != nil {
		t.Fatal(err)
	}
	if info, err := rec.Info(sources[0]); err != nil || info.Epoch != 1 || !info.Converged() {
		t.Fatalf("re-added source not serving: %+v, %v", info, err)
	}
}

// TestUnjournalableUpdatesDoNotPoisonRecovery guards the batch-sanitizing
// hook: updates the apply path skips as no-ops but the WAL cannot represent
// — a zero-valued Op, a negative vertex id — must be dropped from the
// journal, not mis-encoded. A mis-encoded zero Op would replay as a real
// insert (recovered graph diverges); a mis-encoded negative id would make
// every later record unreadable (data dir bricked).
func TestUnjournalableUpdatesDoNotPoisonRecovery(t *testing.T) {
	initial, stream := recoveryWorkload(t, 200, 1600, 2, 10)
	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Epsilon = 1e-4
	so := ServiceOptions{Options: opts, PoolWorkers: 1}
	sources := GraphFromEdges(initial).TopDegreeVertices(1)
	dir := filepath.Join(t.TempDir(), "data")

	svc, err := NewPersistentService(GraphFromEdges(initial), sources, so, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	edgesBefore := svc.Stats().Edges
	poisoned := Batch{
		{U: 90, V: 91},             // zero Op: skipped by apply
		{U: -1, V: 2, Op: Insert},  // negative id: skipped by apply
		{U: 3, V: -7, Op: Delete},  // negative id: skipped by apply
		{U: 95, V: 96, Op: Op(9)},  // unknown op: skipped by apply
		stream[0][0], stream[0][1], // two genuine updates
	}
	res, err := svc.ApplyBatch(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied > 2 {
		t.Fatalf("apply accounting wrong: %+v", res)
	}
	if _, err := svc.ApplyBatch(stream[1]); err != nil {
		t.Fatal(err)
	}
	liveEdges := svc.Stats().Edges
	liveEst, err := svc.Estimates(sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := NewServiceFromRecovery(so, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after journaling a poisoned batch: %v", err)
	}
	defer rec.Close()
	if got := rec.Stats().Edges; got != liveEdges {
		t.Fatalf("recovered graph has %d edges, live had %d (before poison: %d)", got, liveEdges, edgesBefore)
	}
	recEst, err := rec.Estimates(sources[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(recEst, liveEst) {
		t.Fatal("recovered estimates diverge after a batch with unjournalable updates")
	}
}

// TestPersistentServiceBootGuards covers the constructor error paths: a
// fresh boot refuses a directory that already holds a checkpoint, recovery
// refuses a directory without one, and Checkpoint on an in-memory service
// reports ErrNoPersistence.
func TestPersistentServiceBootGuards(t *testing.T) {
	initial, _ := recoveryWorkload(t, 100, 800, 1, 5)
	opts := DefaultOptions()
	opts.Epsilon = 1e-4
	sources := GraphFromEdges(initial).TopDegreeVertices(1)
	so := ServiceOptions{Options: opts, PoolWorkers: 1}
	dir := filepath.Join(t.TempDir(), "data")

	svc, err := NewPersistentService(GraphFromEdges(initial), sources, so, PersistOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Persistence == nil || st.Persistence.Checkpoints != 1 || st.Persistence.Dir != dir {
		t.Fatalf("persistence stats wrong: %+v", st.Persistence)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewPersistentService(GraphFromEdges(initial), sources, so, PersistOptions{Dir: dir}); err == nil {
		t.Fatal("fresh boot over an existing checkpoint must be refused")
	}
	if _, err := NewServiceFromRecovery(so, PersistOptions{Dir: t.TempDir()}); err == nil {
		t.Fatal("recovery without a checkpoint must fail")
	}

	mem, err := NewService(GraphFromEdges(initial), sources, so)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Checkpoint(); err != ErrNoPersistence {
		t.Fatalf("in-memory Checkpoint: got %v, want ErrNoPersistence", err)
	}
	if mem.Stats().Persistence != nil {
		t.Fatal("in-memory service must report nil persistence stats")
	}
}
