// BenchmarkOnDemandQuery contrasts the three tiers of the serving model on
// R-MAT graphs: path=tracked reads the live incrementally-maintained
// snapshot, path=ondemand pays a bounded cold push per query, and
// path=promoted is a formerly cold source after the admission cache moved it
// to live tracking — the parity the CI gate asserts (a promoted read must
// serve at tracked speed, not on-demand speed).
package dynppr_test

import (
	"fmt"
	"sync"
	"testing"

	"dynppr"
)

// TestOnDemandSnapshotTouchedProportional pins the cost model of the cold
// query's setup step structurally: after a small batch dirties a handful of
// vertices, the next cold query's epoch-pinned view must layer only those
// vertices' delta segments over the shared CSR base — not rebuild a full
// CSR. LastSnapshotDeltaEdges is exactly the entries the view copied, so it
// must scale with the batch, not with the graph.
func TestOnDemandSnapshotTouchedProportional(t *testing.T) {
	const vertices = 20_000
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: vertices, Edges: 5 * vertices, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := dynppr.DefaultOptions()
	opts.Engine = dynppr.EngineDeterministic
	opts.Epsilon = 1e-4
	g := dynppr.GraphFromEdges(edges)
	tracked := g.TopDegreeVertices(1)[0]
	// Disable automatic compaction so the measured delta cost is the
	// batch's own footprint, not whatever survived a background merge.
	svc, err := dynppr.NewService(g, []dynppr.VertexID{tracked}, dynppr.ServiceOptions{
		Options: opts, PoolWorkers: 1, CompactAfterDeltaEdges: -1,
		OnDemand: dynppr.OnDemandOptions{Enabled: true, Epsilon: 1e-4, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cold := dynppr.GraphFromEdges(edges).TopDegreeVertices(16)[15]

	// Cold query against the untouched graph: FromEdges built a pure CSR
	// base, so the pinned view must report zero delta entries.
	if _, _, err := svc.QueryTopK(cold, 10); err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	if stats.OnDemand == nil {
		t.Fatal("on-demand stats missing")
	}
	if got := stats.OnDemand.LastSnapshotDeltaEdges; got != 0 {
		t.Fatalf("compacted-base snapshot reports %d delta entries, want 0", got)
	}
	builds := stats.OnDemand.SnapshotBuilds

	// A 50-update batch touches at most 100 vertices. Each effective update
	// adds 2 delta entries and each first touch of a vertex materializes
	// its adjacency, so the view's delta cost is bounded by the touched
	// vertices' degrees — here tail vertices of the R-MAT skew, so orders
	// of magnitude below the 2(n+m) a full CSR rebuild would copy.
	const batchSize = 50
	batch := make(dynppr.Batch, 0, batchSize)
	for i := 0; i < batchSize; i++ {
		batch = append(batch, dynppr.Update{
			U:  dynppr.VertexID(vertices - 1 - i*13),
			V:  dynppr.VertexID(vertices - 2 - i*17),
			Op: dynppr.Insert,
		})
	}
	if _, err := svc.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.QueryTopK(cold, 10); err != nil {
		t.Fatal(err)
	}
	stats = svc.Stats()
	if stats.OnDemand.SnapshotBuilds <= builds {
		t.Fatal("mutation did not force a fresh on-demand snapshot")
	}
	delta := stats.OnDemand.LastSnapshotDeltaEdges
	if delta == 0 {
		t.Fatal("post-batch snapshot reports no delta entries: view is not layering over the base")
	}
	full := int64(2 * (vertices + len(edges)))
	if delta >= full/100 {
		t.Fatalf("snapshot copied %d delta entries — not touched-proportional against a full rebuild's %d", delta, full)
	}
}

// odBenchState is the lazily built per-size fixture: one service that never
// promotes and never caches (so path=ondemand and path=coalesced pay a real
// cold push on every miss across all b.N iterations), one with the result
// cache enabled (path=cached measures the hit path), and one that promotes
// after 3 queries (providing both the tracked baseline and the promoted
// source).
type odBenchState struct {
	once      sync.Once
	odOnly    *dynppr.Service
	cachedSvc *dynppr.Service
	promo     *dynppr.Service
	tracked   dynppr.VertexID
	cold      dynppr.VertexID
	promoted  dynppr.VertexID
	err       error
}

var odBench = map[int]*odBenchState{10_000: {}, 200_000: {}}

func (st *odBenchState) setup(vertices int) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "ondemand-bench", Model: dynppr.ModelRMAT,
		Vertices: vertices, Edges: 5 * vertices, Seed: 11,
	})
	if err != nil {
		st.err = err
		return
	}
	opts := dynppr.DefaultOptions()
	opts.Engine = dynppr.EngineDeterministic
	opts.Epsilon = 1e-4
	build := func(promoteAfter, resultCache int) (*dynppr.Service, dynppr.VertexID, error) {
		g := dynppr.GraphFromEdges(edges)
		source := g.TopDegreeVertices(1)[0]
		svc, err := dynppr.NewService(g, []dynppr.VertexID{source}, dynppr.ServiceOptions{
			Options: opts, PoolWorkers: 1,
			OnDemand: dynppr.OnDemandOptions{
				Enabled: true, Epsilon: 1e-4, Seed: 3,
				PromoteAfter: promoteAfter, MaxAutoSources: 4,
				ResultCache: resultCache,
			},
		})
		return svc, source, err
	}
	// The push-path fixtures disable the result cache: every iteration must
	// pay (or coalesce onto) a real cold push, not a cache hit.
	if st.odOnly, st.tracked, st.err = build(0, -1); st.err != nil {
		return
	}
	if st.cachedSvc, _, st.err = build(0, 0); st.err != nil {
		return
	}
	if st.promo, _, st.err = build(3, -1); st.err != nil {
		return
	}
	// A mid-degree vertex keeps the cold query representative: neither the
	// hub the tracked path serves nor an isolated leaf.
	st.cold = dynppr.GraphFromEdges(edges).TopDegreeVertices(16)[15]
	st.promoted = st.cold
	for i := 0; i < 3; i++ {
		if _, _, err := st.promo.QueryTopK(st.promoted, 10); err != nil {
			st.err = err
			return
		}
	}
	// The third query promotes synchronously; fail loudly if it did not.
	if _, info, err := st.promo.QueryTopK(st.promoted, 10); err != nil || info.Approx {
		st.err = fmt.Errorf("source %d not promoted after 3 queries (info %+v, err %v)",
			st.promoted, info, err)
	}
}

func BenchmarkOnDemandQuery(b *testing.B) {
	for _, vertices := range []int{10_000, 200_000} {
		st := odBench[vertices]
		b.Run(fmt.Sprintf("n=%d", vertices), func(b *testing.B) {
			st.once.Do(func() { st.setup(vertices) })
			if st.err != nil {
				b.Fatal(st.err)
			}
			for _, path := range []struct {
				name       string
				svc        *dynppr.Service
				source     dynppr.VertexID
				wantApprox bool
			}{
				{"tracked", st.promo, st.tracked, false},
				{"ondemand", st.odOnly, st.cold, true},
				{"promoted", st.promo, st.promoted, false},
			} {
				b.Run("path="+path.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						top, info, err := path.svc.QueryTopK(path.source, 10)
						if err != nil {
							b.Fatal(err)
						}
						if info.Approx != path.wantApprox || len(top) == 0 {
							b.Fatalf("path %s: approx=%t results=%d", path.name, info.Approx, len(top))
						}
					}
				})
			}
			// path=cached measures the result-cache hit path: one priming
			// query pays the push, every timed iteration must hit.
			b.Run("path=cached", func(b *testing.B) {
				if _, info, err := st.cachedSvc.QueryTopK(st.cold, 10); err != nil || !info.Approx {
					b.Fatalf("priming query: approx=%t err=%v", info.Approx, err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					top, info, err := st.cachedSvc.QueryTopK(st.cold, 10)
					if err != nil {
						b.Fatal(err)
					}
					if !info.Cached || len(top) == 0 {
						b.Fatalf("cached path missed: cached=%t results=%d", info.Cached, len(top))
					}
				}
			})
			// path=coalesced hammers one cold source from all procs with the
			// cache disabled: concurrent identical queries share a single
			// in-flight push, so the per-query cost amortizes the cold push
			// across the waiters.
			b.Run("path=coalesced", func(b *testing.B) {
				b.ReportAllocs()
				// Waiters block on the shared flight rather than burning CPU,
				// so oversubscribing GOMAXPROCS still measures real sharing
				// even on a single-core runner.
				b.SetParallelism(4)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						top, info, err := st.odOnly.QueryTopK(st.cold, 10)
						if err != nil {
							b.Fatal(err)
						}
						if !info.Approx || len(top) == 0 {
							b.Fatalf("coalesced path: approx=%t results=%d", info.Approx, len(top))
						}
					}
				})
			})
		})
	}
}
