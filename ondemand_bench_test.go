// BenchmarkOnDemandQuery contrasts the three tiers of the serving model on
// R-MAT graphs: path=tracked reads the live incrementally-maintained
// snapshot, path=ondemand pays a bounded cold push per query, and
// path=promoted is a formerly cold source after the admission cache moved it
// to live tracking — the parity the CI gate asserts (a promoted read must
// serve at tracked speed, not on-demand speed).
package dynppr_test

import (
	"fmt"
	"sync"
	"testing"

	"dynppr"
)

// odBenchState is the lazily built per-size fixture: one service that never
// promotes (so path=ondemand stays on the push path across all b.N
// iterations) and one that promotes after 3 queries (providing both the
// tracked baseline and the promoted source).
type odBenchState struct {
	once     sync.Once
	odOnly   *dynppr.Service
	promo    *dynppr.Service
	tracked  dynppr.VertexID
	cold     dynppr.VertexID
	promoted dynppr.VertexID
	err      error
}

var odBench = map[int]*odBenchState{10_000: {}, 200_000: {}}

func (st *odBenchState) setup(vertices int) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "ondemand-bench", Model: dynppr.ModelRMAT,
		Vertices: vertices, Edges: 5 * vertices, Seed: 11,
	})
	if err != nil {
		st.err = err
		return
	}
	opts := dynppr.DefaultOptions()
	opts.Engine = dynppr.EngineDeterministic
	opts.Epsilon = 1e-4
	build := func(promoteAfter int) (*dynppr.Service, dynppr.VertexID, error) {
		g := dynppr.GraphFromEdges(edges)
		source := g.TopDegreeVertices(1)[0]
		svc, err := dynppr.NewService(g, []dynppr.VertexID{source}, dynppr.ServiceOptions{
			Options: opts, PoolWorkers: 1,
			OnDemand: dynppr.OnDemandOptions{
				Enabled: true, Epsilon: 1e-4, Seed: 3,
				PromoteAfter: promoteAfter, MaxAutoSources: 4,
			},
		})
		return svc, source, err
	}
	if st.odOnly, st.tracked, st.err = build(0); st.err != nil {
		return
	}
	if st.promo, _, st.err = build(3); st.err != nil {
		return
	}
	// A mid-degree vertex keeps the cold query representative: neither the
	// hub the tracked path serves nor an isolated leaf.
	st.cold = dynppr.GraphFromEdges(edges).TopDegreeVertices(16)[15]
	st.promoted = st.cold
	for i := 0; i < 3; i++ {
		if _, _, err := st.promo.QueryTopK(st.promoted, 10); err != nil {
			st.err = err
			return
		}
	}
	// The third query promotes synchronously; fail loudly if it did not.
	if _, info, err := st.promo.QueryTopK(st.promoted, 10); err != nil || info.Approx {
		st.err = fmt.Errorf("source %d not promoted after 3 queries (info %+v, err %v)",
			st.promoted, info, err)
	}
}

func BenchmarkOnDemandQuery(b *testing.B) {
	for _, vertices := range []int{10_000, 200_000} {
		st := odBench[vertices]
		b.Run(fmt.Sprintf("n=%d", vertices), func(b *testing.B) {
			st.once.Do(func() { st.setup(vertices) })
			if st.err != nil {
				b.Fatal(st.err)
			}
			for _, path := range []struct {
				name       string
				svc        *dynppr.Service
				source     dynppr.VertexID
				wantApprox bool
			}{
				{"tracked", st.promo, st.tracked, false},
				{"ondemand", st.odOnly, st.cold, true},
				{"promoted", st.promo, st.promoted, false},
			} {
				b.Run("path="+path.name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						top, info, err := path.svc.QueryTopK(path.source, 10)
						if err != nil {
							b.Fatal(err)
						}
						if info.Approx != path.wantApprox || len(top) == 0 {
							b.Fatalf("path %s: approx=%t results=%d", path.name, info.Approx, len(top))
						}
					}
				})
			}
		})
	}
}
