package dynppr

// Chaos differential suite: the proof obligation of the degraded-mode
// persistence design. A deterministic workload (edge batches plus a manual
// mid-stream checkpoint) is first run fault-free through a faultfs.Injector
// to count its fault-eligible write operations; then, once per operation
// index n, the run repeats with a one-shot fault scripted at exactly the
// n-th operation — an outright failure on even indexes, a torn partial
// write on odd ones. The fault fires, the service degrades, the recovery
// probe heals it, the rejected mutations are retried, and the suite asserts:
//
//   - every acknowledged mutation survives and no rejected one leaves any
//     partial effect — the healed estimates are bit-identical to a
//     never-faulted oracle;
//   - the service ends HEALTHY with the probe counters accounting for the
//     episode;
//   - the checkpoint on disk is decodable at every point — a torn temp file
//     never clobbers the last good checkpoint;
//   - a fresh recovery from the healed directory reconstructs the same
//     bit-identical state.

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dynppr/internal/ckpt"
	"dynppr/internal/faultfs"
)

// chaosApply retries a mutation through a degraded window: rejected-while-
// degraded is the contract (zero partial effect), so the batch is simply
// re-offered until the recovery probe heals the stack.
func chaosApply(t *testing.T, svc *Service, b Batch) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := svc.ApplyBatch(b)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrPersistenceDegraded) {
			t.Fatalf("mutation rejected with a non-degraded error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded window never healed: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func chaosCheckpoint(t *testing.T, svc *Service) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := svc.Checkpoint()
		if err == nil {
			return
		}
		if !errors.Is(err, ErrPersistenceDegraded) {
			t.Fatalf("checkpoint failed with a non-degraded error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint never healed: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosWorkload drives the fixed operation sequence: the update stream with
// a manual checkpoint after the third batch (so checkpoint and WAL-rotation
// write sites sit inside the faultable window, not just appends).
func chaosWorkload(t *testing.T, svc *Service, stream []Batch) {
	t.Helper()
	for k, b := range stream {
		chaosApply(t, svc, b)
		if k == 2 {
			chaosCheckpoint(t, svc)
		}
	}
}

func TestChaosDifferential(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			testChaosDifferential(t, par)
		})
	}
}

func testChaosDifferential(t *testing.T, parallelism int) {
	const batches = 5
	initial, stream := recoveryWorkload(t, 250, 2500, batches, 20)

	opts := DefaultOptions()
	opts.Engine = EngineDeterministic
	opts.Parallelism = parallelism
	opts.Epsilon = 1e-5
	sources := GraphFromEdges(initial).TopDegreeVertices(2)
	oracle := oracleStates(t, initial, sources, stream, opts)
	so := ServiceOptions{Options: opts, PoolWorkers: 2}

	boot := func(t *testing.T) (*Service, *faultfs.Injector, string) {
		t.Helper()
		in := faultfs.NewInjector(faultfs.OS)
		dir := filepath.Join(t.TempDir(), "data")
		svc, err := NewPersistentService(GraphFromEdges(initial), sources, so,
			PersistOptions{Dir: dir, Sync: SyncAlways, FS: in, ProbeBackoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return svc, in, dir
	}

	// Fault-free calibration run: count the workload's fault-eligible write
	// operations (boot excluded — Ops() is read after construction) and pin
	// the oracle agreement of the unfaulted path.
	svc, in, _ := boot(t)
	preOps := in.Ops()
	chaosWorkload(t, svc, stream)
	faultable := in.Ops() - preOps
	assertRecoveredState(t, svc, sources, oracle[batches], batches)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if faultable < int64(2*batches) {
		t.Fatalf("workload exercised only %d write operations; the sweep would be vacuous", faultable)
	}
	t.Logf("sweeping a fault over each of %d write operations", faultable)

	for n := int64(1); n <= faultable; n++ {
		n := n
		t.Run(fmt.Sprintf("op=%d", n), func(t *testing.T) {
			svc, in, dir := boot(t)
			defer svc.Close()
			rule := faultfs.Rule{Op: faultfs.OpAny, Nth: int(n)}
			if n%2 == 1 {
				rule.Mode = faultfs.ModePartial
				rule.Partial = 7
			}
			in.Add(rule)

			chaosWorkload(t, svc, stream)

			// The one-shot fault has fired and been healed (or hit an
			// operation whose retry healed it): the service must end HEALTHY
			// with the episode accounted, and bit-identical to the oracle.
			h := waitPersistState(t, svc, PersistHealthy)
			if h.Err != "" {
				t.Fatalf("healthy service still carries error %q", h.Err)
			}
			st := svc.Stats().Persistence
			if st.ProbeSuccesses < 1 {
				t.Fatalf("fault at op %d never drove a successful recovery probe (attempts %d)",
					n, st.ProbeAttempts)
			}
			if st.DegradedSeconds <= 0 {
				t.Fatal("degraded episode not accounted in DegradedSeconds")
			}
			assertRecoveredState(t, svc, sources, oracle[batches], batches)

			// Torn-temp invariant: whatever the fault did, the checkpoint
			// path always holds a complete, decodable checkpoint.
			if _, err := ckpt.LoadFileFS(faultfs.OS, checkpointPath(dir)); err != nil {
				t.Fatalf("checkpoint on disk undecodable after healed episode: %v", err)
			}

			if err := svc.Close(); err != nil {
				t.Fatalf("close after healed episode: %v", err)
			}
			// A real recovery from the healed directory (clean filesystem)
			// reconstructs the same bit-identical state.
			rec, err := NewServiceFromRecovery(so, PersistOptions{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatalf("recovery from healed directory: %v", err)
			}
			defer rec.Close()
			assertRecoveredState(t, rec, sources, oracle[batches], batches)
		})
	}
}
