// Benchmarks of the persistence subsystem, recorded alongside
// BenchmarkBatchApplyEngines in BENCH_PR4.json so dppr-benchdiff gates both
// the journaling hot path and the absence of overhead when journaling is
// off (BatchApplyEngines runs on an in-memory Tracker).
package dynppr_test

import (
	"os"
	"path/filepath"
	"testing"

	"dynppr"
	"dynppr/internal/wal"
)

// walBenchBatch builds a deterministic 1000-update batch.
func walBenchBatch(b *testing.B) dynppr.Batch {
	b.Helper()
	batch := make(dynppr.Batch, 1000)
	for i := range batch {
		op := dynppr.Insert
		if i%4 == 3 {
			op = dynppr.Delete
		}
		batch[i] = dynppr.Update{
			U: dynppr.VertexID(i * 7 % 5000), V: dynppr.VertexID(i * 13 % 5000), Op: op,
		}
	}
	return batch
}

// BenchmarkWALAppend measures the journaling hot path: encoding + appending
// one 1000-update batch record, with and without a per-append fsync. The
// sync=none number is the marginal cost ApplyBatch pays on a persistent
// service before any push work starts; sync=always adds the durability
// fsync and is dominated by the storage stack.
func BenchmarkWALAppend(b *testing.B) {
	batch := walBenchBatch(b)
	for _, tc := range []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"sync=none", wal.SyncNone},
		{"sync=always", wal.SyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.log")
			l, _, err := wal.OpenOrCreate(path, 0, wal.Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(batch)), "updates/record")
			b.ReportMetric(float64(l.Size())/float64(b.N), "bytes/record")
		})
	}
}

// BenchmarkRecovery measures a full recovery boot — checkpoint load, graph
// and state reconstruction, WAL-suffix replay (8 batches of 200 updates),
// and the boot-time re-checkpoint — of a 3000-vertex service with two
// tracked sources. Each iteration recovers a pristine copy of the same data
// directory.
func BenchmarkRecovery(b *testing.B) {
	const batches = 8
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "recovery-bench", Model: dynppr.ModelRMAT, Vertices: 3000, Edges: 30000, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	stream := dynppr.NewStream(edges, 4)
	window, initial := dynppr.NewSlidingWindow(stream, 0.5)
	g := dynppr.GraphFromEdges(initial)
	sources := g.TopDegreeVertices(2)

	so := dynppr.DefaultServiceOptions()
	so.Options.Engine = dynppr.EngineDeterministic
	so.Options.Epsilon = 1e-5

	pristine := filepath.Join(b.TempDir(), "data")
	svc, err := dynppr.NewPersistentService(g, sources, so,
		dynppr.PersistOptions{Dir: pristine, Sync: dynppr.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < batches; i++ {
		if _, err := svc.ApplyBatch(window.Slide(200)); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}

	copyDir := func(dst string) {
		for _, name := range []string{"checkpoint", "wal.log"} {
			data, err := os.ReadFile(filepath.Join(pristine, name))
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		copyDir(dir)
		b.StartTimer()
		rec, err := dynppr.NewServiceFromRecovery(so, dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(batches, "replayed-batches/op")
}
