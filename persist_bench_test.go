// Benchmarks of the persistence subsystem, recorded alongside
// BenchmarkBatchApplyEngines in BENCH_PR4.json so dppr-benchdiff gates both
// the journaling hot path and the absence of overhead when journaling is
// off (BatchApplyEngines runs on an in-memory Tracker).
package dynppr_test

import (
	"os"
	"path/filepath"
	"testing"

	"dynppr"
	"dynppr/internal/ckpt"
	"dynppr/internal/graph"
	"dynppr/internal/wal"
)

// walBenchBatch builds a deterministic 1000-update batch.
func walBenchBatch(b *testing.B) dynppr.Batch {
	b.Helper()
	batch := make(dynppr.Batch, 1000)
	for i := range batch {
		op := dynppr.Insert
		if i%4 == 3 {
			op = dynppr.Delete
		}
		batch[i] = dynppr.Update{
			U: dynppr.VertexID(i * 7 % 5000), V: dynppr.VertexID(i * 13 % 5000), Op: op,
		}
	}
	return batch
}

// BenchmarkWALAppend measures the journaling hot path: encoding + appending
// one 1000-update batch record, with and without a per-append fsync. The
// sync=none number is the marginal cost ApplyBatch pays on a persistent
// service before any push work starts; sync=always adds the durability
// fsync and is dominated by the storage stack.
func BenchmarkWALAppend(b *testing.B) {
	batch := walBenchBatch(b)
	for _, tc := range []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"sync=none", wal.SyncNone},
		{"sync=always", wal.SyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.log")
			l, _, err := wal.OpenOrCreate(path, 0, wal.Options{Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(batch)), "updates/record")
			b.ReportMetric(float64(l.Size())/float64(b.N), "bytes/record")
		})
	}
}

// buildRecoveryDir builds a checkpoint-covered data directory: a service
// over an R-MAT sliding-window workload, a few applied batches, and a final
// checkpoint so the WAL is empty and recovery time is purely the checkpoint
// load. It returns the directory and the service options to recover with.
func buildRecoveryDir(b *testing.B, vertices, edges, nSources int, epsilon float64) (string, dynppr.ServiceOptions) {
	b.Helper()
	all, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "recovery-bench", Model: dynppr.ModelRMAT, Vertices: vertices, Edges: edges, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	stream := dynppr.NewStream(all, 4)
	window, initial := dynppr.NewSlidingWindow(stream, 0.5)
	g := dynppr.GraphFromEdges(initial)
	sources := g.TopDegreeVertices(nSources)

	so := dynppr.DefaultServiceOptions()
	so.Options.Engine = dynppr.EngineDeterministic
	so.Options.Epsilon = epsilon

	dir := filepath.Join(b.TempDir(), "data")
	svc, err := dynppr.NewPersistentService(g, sources, so,
		dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := svc.ApplyBatch(window.Slide(200)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := svc.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		b.Fatal(err)
	}
	return dir, so
}

// downgradeCheckpoint rewrites the v2 CSR-image checkpoint at dir as the
// legacy v1 adjacency format holding the identical state — the
// "replay-from-edges" recovery the storage engine replaced.
func downgradeCheckpoint(b *testing.B, dir string) {
	b.Helper()
	path := filepath.Join(dir, "checkpoint")
	data, err := ckpt.LoadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	if data.CSR == nil {
		b.Fatal("pristine checkpoint is not a v2 CSR image")
	}
	n := data.CSR.NumVertices()
	data.Out = make([][]graph.VertexID, n)
	data.In = make([][]graph.VertexID, n)
	for v := 0; v < n; v++ {
		data.Out[v] = data.CSR.OutNeighbors(graph.VertexID(v))
		data.In[v] = data.CSR.InNeighbors(graph.VertexID(v))
	}
	data.CSR = nil
	if err := ckpt.WriteFile(path, data); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery measures a full recovery boot — checkpoint load, graph
// and push-state reconstruction — from a checkpoint-covered data directory,
// in both on-disk formats:
//
//   - format=image: the v2 CSR-image checkpoint; the decoded arrays become
//     the graph's base segment with no per-edge work.
//   - format=replay: the same state downgraded to the legacy v1 adjacency
//     format, whose load re-derives the CSR from per-vertex lists and (as on
//     any real v1 boot) pays the upgrade re-checkpoint.
//
// The CI gate asserts image >= 5x faster than replay at the 10M-edge scale.
// Each iteration recovers a pristine copy of the same directory. Run the
// n=1000000 size with -benchtime 1x.
func BenchmarkRecovery(b *testing.B) {
	for _, size := range []struct {
		name            string
		vertices, edges int
		nSources        int
		epsilon         float64
	}{
		{"n=3000", 3000, 30_000, 2, 1e-5},
		{"n=1000000", 1_000_000, 10_000_000, 1, 1e-4},
	} {
		b.Run(size.name, func(b *testing.B) {
			pristine, so := buildRecoveryDir(b, size.vertices, size.edges, size.nSources, size.epsilon)
			for _, format := range []struct {
				name      string
				downgrade bool
			}{
				{"image", false},
				{"replay", true},
			} {
				b.Run("format="+format.name, func(b *testing.B) {
					src := pristine
					if format.downgrade {
						src = filepath.Join(b.TempDir(), "v1")
						if err := os.MkdirAll(src, 0o755); err != nil {
							b.Fatal(err)
						}
						copyRecoveryDir(b, pristine, src)
						downgradeCheckpoint(b, src)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						dir := b.TempDir()
						copyRecoveryDir(b, src, dir)
						b.StartTimer()
						rec, err := dynppr.NewServiceFromRecovery(so, dynppr.PersistOptions{Dir: dir, Sync: dynppr.SyncNone})
						if err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						if err := rec.Close(); err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
					}
				})
			}
		})
	}
}

func copyRecoveryDir(b *testing.B, srcDir, dst string) {
	b.Helper()
	for _, name := range []string{"checkpoint", "wal.log"} {
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
