package dynppr_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"dynppr"
)

// dedupeEdges removes duplicate (u,v) pairs, preserving first occurrence.
func dedupeEdges(edges []dynppr.Edge) []dynppr.Edge {
	seen := make(map[dynppr.Edge]struct{}, len(edges))
	out := edges[:0:0]
	for _, e := range edges {
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// TestServiceConcurrentStress drives the Service the way the north-star
// workload does: several writer goroutines stream insert/delete batches
// through ApplyBatch while many reader goroutines hammer Estimate / TopK /
// EstimatesInfo and a churn goroutine adds and removes sources — all at
// once. Run under -race this validates the snapshot publication protocol;
// the assertions validate the serving contract:
//
//   - every read observes a converged snapshot (MaxResidual ≤ ε),
//   - per source, snapshot epochs never go backwards,
//   - reads of a removed source fail with ErrUnknownSource, never with a
//     torn result.
//
// Each writer owns a disjoint slice of the edge universe (it inserts its
// edges, then deletes half of them), so the final graph is deterministic no
// matter how the pipeline interleaves the writers — which lets the test end
// by checking the served snapshots against an offline Tracker on the exact
// final graph.
func TestServiceConcurrentStress(t *testing.T) {
	const (
		epsilon    = 1e-4
		numReaders = 6
		numWriters = 3
		batchSize  = 60
	)
	raw, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelRMAT, Vertices: 400, Edges: 2400, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	edges := dedupeEdges(raw)
	initial := edges[:len(edges)/2]
	rest := edges[len(edges)/2:]
	chunk := len(rest) / numWriters

	g := dynppr.GraphFromEdges(initial)
	stable := g.TopDegreeVertices(4) // never removed

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = epsilon
	so.Options.Workers = 2
	so.PoolWorkers = 3
	svc, err := dynppr.NewService(g, stable, so)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	stop := make(chan struct{})
	var reads atomic.Int64
	var readerWG sync.WaitGroup

	for r := 0; r < numReaders; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			lastEpoch := make(map[dynppr.VertexID]uint64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := stable[rng.Intn(len(stable))]
				switch rng.Intn(3) {
				case 0:
					est, info, err := svc.EstimatesInfo(src)
					if err != nil {
						t.Errorf("EstimatesInfo(%d): %v", src, err)
						return
					}
					if !info.Converged() {
						t.Errorf("read a non-converged snapshot for %d: residual %v > ε %v",
							src, info.MaxResidual, info.Epsilon)
						return
					}
					if info.Epoch < lastEpoch[src] {
						t.Errorf("source %d epoch went backwards: %d after %d", src, info.Epoch, lastEpoch[src])
						return
					}
					lastEpoch[src] = info.Epoch
					if len(est) != info.Vertices {
						t.Errorf("source %d: vector length %d vs info %d", src, len(est), info.Vertices)
						return
					}
				case 1:
					if _, err := svc.Estimate(src, dynppr.VertexID(rng.Intn(400))); err != nil {
						t.Errorf("Estimate(%d): %v", src, err)
						return
					}
				default:
					top, err := svc.TopK(src, 5)
					if err != nil || len(top) == 0 {
						t.Errorf("TopK(%d): %v (len %d)", src, err, len(top))
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}

	// Churn goroutine: add a source, query it, remove it again — while the
	// writers and readers run.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		extra := []dynppr.VertexID{390, 391, 392}
		for i := 0; i < 4; i++ {
			v := extra[i%len(extra)]
			if err := svc.AddSource(v); err != nil {
				t.Errorf("AddSource(%d): %v", v, err)
				return
			}
			if _, err := svc.Estimate(v, 0); err != nil {
				t.Errorf("Estimate of fresh source %d: %v", v, err)
				return
			}
			if err := svc.RemoveSource(v); err != nil {
				t.Errorf("RemoveSource(%d): %v", v, err)
				return
			}
			if _, err := svc.Estimate(v, 0); !errors.Is(err, dynppr.ErrUnknownSource) {
				t.Errorf("read of removed source %d: %v", v, err)
				return
			}
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < numWriters; w++ {
		mine := rest[w*chunk : (w+1)*chunk]
		writerWG.Add(1)
		go func(mine []dynppr.Edge) {
			defer writerWG.Done()
			apply := func(lo, hi int, op dynppr.Op) bool {
				for ; lo < hi; lo += batchSize {
					end := lo + batchSize
					if end > hi {
						end = hi
					}
					b := make(dynppr.Batch, 0, end-lo)
					for _, e := range mine[lo:end] {
						b = append(b, dynppr.Update{U: e.U, V: e.V, Op: op})
					}
					if _, err := svc.ApplyBatch(b); err != nil {
						t.Errorf("ApplyBatch: %v", err)
						return false
					}
				}
				return true
			}
			// Insert the whole chunk, then delete its first half again.
			if apply(0, len(mine), dynppr.Insert) {
				apply(0, len(mine)/2, dynppr.Delete)
			}
		}(mine)
	}
	writerWG.Wait()
	<-churnDone
	close(stop)
	readerWG.Wait()

	if reads.Load() == 0 {
		t.Fatal("readers performed no reads")
	}
	stats := svc.Stats()
	if stats.Batches == 0 || stats.UpdatesApplied == 0 {
		t.Fatalf("stats recorded no writes: %+v", stats)
	}
	for _, ss := range stats.Sources {
		if ss.MaxResidual > epsilon {
			t.Fatalf("source %d final residual %v exceeds ε", ss.Source, ss.MaxResidual)
		}
	}

	// The final snapshots are not just converged but accurate: every writer
	// kept the second half of its chunk, so the final graph is known exactly.
	finalEdges := append([]dynppr.Edge(nil), initial...)
	for w := 0; w < numWriters; w++ {
		mine := rest[w*chunk : (w+1)*chunk]
		finalEdges = append(finalEdges, mine[len(mine)/2:]...)
	}
	opts := dynppr.DefaultOptions()
	opts.Epsilon = epsilon
	for _, src := range stable {
		tr, err := dynppr.NewTracker(dynppr.GraphFromEdges(finalEdges), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Estimates(src)
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Estimates()
		for v := 0; v < len(want) && v < len(got); v++ {
			d := got[v] - want[v]
			if d < 0 {
				d = -d
			}
			if d > 2*epsilon {
				t.Fatalf("final estimate of %d towards %d: service %v vs offline %v", v, src, got[v], want[v])
			}
		}
	}
}
