// On-demand queries: error-bounded PPR answers for sources nobody
// registered in advance.
//
// The tracked path can never reach "millions of users" — each tracked source
// costs a full estimate/residual pair kept converged on every batch. The
// on-demand path answers the long tail instead: a one-shot run of the
// paper's local push (push.ColdPushCSR / push.ColdPush) over an immutable
// view of the current graph down to a coarse ε, optionally refined by
// deterministic Monte-Carlo walks (internal/montecarlo) from the answer's
// candidate vertices. The view is epoch-pinned and touched-proportional: it
// layers the delta segments recent batches produced over the shared
// immutable CSR base, so refreshing it after a mutation costs O(what the
// batch touched), not O(graph) — and when the graph is freshly compacted the
// queries run directly on the bare base segment. Both tiers estimate the same quantity — the contribution vector
// π_·(s) the live trackers maintain — so promoting a source tightens its
// error bound without ever changing the meaning of its answers. The result
// carries the achieved per-vertex bound so callers know what they got.
//
// A frequency-based admission cache watches on-demand traffic: a source
// queried at least PromoteAfter times is promoted into tracked state through
// the live AddSource path, and when the auto-promoted set is at capacity the
// coldest auto-promoted source is evicted first (manually added sources are
// never touched). Hot long-tail users therefore graduate to exact
// incremental maintenance automatically, and fall back to approximate
// answers — never errors — when they cool off.
package dynppr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynppr/internal/graph"
	"dynppr/internal/montecarlo"
	"dynppr/internal/push"
)

// OnDemandOptions configure the approximate query path for untracked
// sources. The zero value disables it: QueryTopK/QueryEstimate then behave
// exactly like TopK/Estimate, returning ErrUnknownSource for untracked
// sources.
type OnDemandOptions struct {
	// Enabled turns the on-demand path on.
	Enabled bool
	// Epsilon is the push residual threshold for on-demand queries. It is
	// deliberately coarser than the tracked ε — the push cost grows like
	// 1/ε. <= 0 selects 1e-4.
	Epsilon float64
	// RefineWalks is the per-query Monte-Carlo walk budget spent after the
	// push on the answer's candidate vertices (the top-k entries, or the
	// single requested vertex of an estimate). 0 disables refinement; the
	// advertised bound is unaffected either way (walks reduce expected
	// error, not the worst case).
	RefineWalks int
	// Seed drives the refinement walks. Results for a given (seed, source,
	// graph snapshot) are reproducible.
	Seed int64
	// PromoteAfter is the query-count threshold T at which an untracked
	// source is promoted into tracked state. 0 disables promotion.
	PromoteAfter int
	// MaxAutoSources caps how many auto-promoted sources may be tracked at
	// once; at capacity the coldest auto-promoted source is evicted to make
	// room. Manually added sources are never evicted. <= 0 selects 64.
	MaxAutoSources int
	// MaxCandidates bounds the admission cache (the per-source query
	// counters); at capacity the least recently queried candidate is
	// dropped. <= 0 selects 4096.
	MaxCandidates int
	// MaxPushes bounds the work of a single on-demand push. When the cap is
	// hit the answer is still sound — the advertised epsilon grows to cover
	// the unpushed residual. <= 0 selects 4,000,000.
	MaxPushes int64
	// MaxWalkLength caps each refinement walk; <= 0 selects 1000.
	MaxWalkLength int
}

// withDefaults resolves the zero values documented on each field.
func (o OnDemandOptions) withDefaults() OnDemandOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.MaxAutoSources <= 0 {
		o.MaxAutoSources = 64
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	if o.MaxPushes <= 0 {
		o.MaxPushes = 4_000_000
	}
	if o.MaxWalkLength <= 0 {
		o.MaxWalkLength = 1000
	}
	return o
}

// QueryInfo describes how a QueryTopK/QueryEstimate answer was produced.
type QueryInfo struct {
	// Approx is true when the answer came from the on-demand path (one-shot
	// push + optional Monte-Carlo refinement) rather than a tracked
	// source's converged snapshot.
	Approx bool
	// Epsilon bounds the absolute error of every estimate in the answer:
	// the snapshot's configured ε on the tracked path, the push's achieved
	// max residual on the on-demand path. Both are per-vertex bounds on the
	// same contribution vector.
	Epsilon float64
	// Snapshot is the snapshot metadata of the answer. On the on-demand
	// path it is synthesized: Epoch 0 marks "not a tracked snapshot", and
	// MaxResidual/Epsilon carry the push's achieved values.
	Snapshot SnapshotInfo
	// Walks is the number of Monte-Carlo refinement walks run (on-demand
	// only).
	Walks int
	// Promoted reports that this query crossed the promotion threshold and
	// the source is now tracked; subsequent reads take the exact path.
	Promoted bool
}

// onDemand is the Service's on-demand query engine. All fields are
// internally synchronized; the Service calls it from arbitrary reader
// goroutines.
type onDemand struct {
	opts OnDemandOptions
	svc  *Service

	// snap caches the graph view the queries run against, keyed by the
	// service's graph generation. It is rebuilt on the pipeline goroutine
	// (serialized with writes — Graph itself is not safe for concurrent use),
	// at a cost proportional to the delta segments present, not graph size.
	snap atomic.Pointer[odSnapshot]

	// mu guards the admission cache and serializes auto-registry mutations.
	mu    sync.Mutex
	clock int64
	cand  map[VertexID]*odCandidate

	// auto maps each auto-promoted source to its last-use tick. touch() runs
	// on every tracked-path read, so the registry is copy-on-write: readers
	// load the map lock-free and refresh recency through per-entry atomics;
	// mutations (promotion, eviction — rare) publish a fresh copy under mu.
	auto atomic.Pointer[map[VertexID]*atomic.Int64]
	tick atomic.Int64 // recency clock for auto sources

	queries           atomic.Int64
	walks             atomic.Int64
	snapshotBuilds    atomic.Int64
	lastSnapshotDelta atomic.Int64
	promotions        atomic.Int64
	evictions         atomic.Int64
	lastLatency       atomic.Int64 // nanoseconds
	totalLatency      atomic.Int64 // nanoseconds
}

type odSnapshot struct {
	gen uint64
	// view is the epoch-pinned layered view cold queries walk.
	view *graph.View
	// base is view's bare CSR base segment when the view carries no deltas
	// (the graph was compacted), nil otherwise. Queries use it to take the
	// dispatch-free CSR fast paths.
	base *graph.CSR
}

// adj returns the adjacency cold-query work should run on: the bare base
// segment when available, the layered view otherwise.
func (s *odSnapshot) adj() graph.Adjacency {
	if s.base != nil {
		return s.base
	}
	return s.view
}

// odCandidate is one admission-cache entry: how often and how recently an
// untracked source has been queried.
type odCandidate struct {
	count int
	last  int64
}

func newOnDemand(svc *Service, opts OnDemandOptions) *onDemand {
	od := &onDemand{
		opts: opts.withDefaults(),
		svc:  svc,
		cand: make(map[VertexID]*odCandidate),
	}
	empty := make(map[VertexID]*atomic.Int64)
	od.auto.Store(&empty)
	return od
}

// mutateAuto publishes a modified copy of the auto-source registry. Callers
// hold od.mu (serializing mutations); touch() readers stay lock-free.
func (od *onDemand) mutateAuto(f func(map[VertexID]*atomic.Int64)) {
	old := *od.auto.Load()
	m := make(map[VertexID]*atomic.Int64, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	f(m)
	od.auto.Store(&m)
}

// OnDemandStats reports the on-demand query path's counters.
type OnDemandStats struct {
	// Queries counts answers served by the on-demand (approximate) path.
	// Reads that hit a tracked source — including promoted ones — do not
	// count here.
	Queries int64
	// Walks counts Monte-Carlo refinement walks across all queries.
	Walks int64
	// SnapshotBuilds counts graph-view rebuilds (one per graph mutation
	// generation actually queried, not per query). Each build copies only
	// the delta-segment headers present at that moment, not the graph.
	SnapshotBuilds int64
	// LastSnapshotDeltaEdges is the number of delta-segment adjacency
	// entries the most recent view build layered over the shared CSR base —
	// the touched-proportional cost the ondemand bench asserts on. 0 means
	// the last build handed out a fully compacted base.
	LastSnapshotDeltaEdges int64
	// Promotions and Evictions count admission-cache decisions: sources
	// promoted into tracked state, and auto-promoted sources evicted to
	// make room.
	Promotions int64
	Evictions  int64
	// Candidates is the current admission-cache size, AutoSources the
	// number of currently tracked auto-promoted sources.
	Candidates  int
	AutoSources int
	// LastLatency and TotalLatency time on-demand answers (push +
	// refinement, excluding promotion work).
	LastLatency  time.Duration
	TotalLatency time.Duration
}

func (od *onDemand) stats() *OnDemandStats {
	od.mu.Lock()
	cands := len(od.cand)
	od.mu.Unlock()
	autos := len(*od.auto.Load())
	return &OnDemandStats{
		Queries:                od.queries.Load(),
		Walks:                  od.walks.Load(),
		SnapshotBuilds:         od.snapshotBuilds.Load(),
		LastSnapshotDeltaEdges: od.lastSnapshotDelta.Load(),
		Promotions:             od.promotions.Load(),
		Evictions:              od.evictions.Load(),
		Candidates:             cands,
		AutoSources:            autos,
		LastLatency:            time.Duration(od.lastLatency.Load()),
		TotalLatency:           time.Duration(od.totalLatency.Load()),
	}
}

// QueryTopK returns the k vertices with the largest PPR estimates for
// source. A tracked source is served from its converged snapshot exactly
// like TopK; an untracked source is answered by the on-demand path when it
// is enabled (QueryInfo.Approx true, QueryInfo.Epsilon the achieved bound)
// and with ErrUnknownSource otherwise.
func (s *Service) QueryTopK(source VertexID, k int) ([]VertexScore, QueryInfo, error) {
	return s.QueryTopKCtx(context.Background(), source, k)
}

// QueryTopKCtx is QueryTopK with bounded admission for the pipeline work an
// on-demand answer may need (snapshot refresh after a graph mutation,
// promotion): if the write queue stays full until ctx is done those give up
// with ErrOverloaded. Tracked-source reads never touch the pipeline and
// ignore ctx.
func (s *Service) QueryTopKCtx(ctx context.Context, source VertexID, k int) ([]VertexScore, QueryInfo, error) {
	if top, info, err := s.TopKInfo(source, k); err == nil {
		s.od.touch(source)
		return top, QueryInfo{Epsilon: info.Epsilon, Snapshot: info}, nil
	} else if !errorIsUnknownSource(err) || s.od == nil {
		return nil, QueryInfo{}, err
	}
	res, qi, err := s.onDemandQuery(ctx, source, odRefine{topK: k})
	if err != nil {
		return nil, QueryInfo{}, err
	}
	return res.topK(k), qi, nil
}

// QueryEstimate returns the PPR estimate of v with respect to source,
// falling back to the on-demand path for untracked sources exactly like
// QueryTopK.
func (s *Service) QueryEstimate(source, v VertexID) (float64, QueryInfo, error) {
	return s.QueryEstimateCtx(context.Background(), source, v)
}

// QueryEstimateCtx is QueryEstimate with bounded admission (see
// QueryTopKCtx).
func (s *Service) QueryEstimateCtx(ctx context.Context, source, v VertexID) (float64, QueryInfo, error) {
	if est, info, err := s.EstimateInfo(source, v); err == nil {
		s.od.touch(source)
		return est, QueryInfo{Epsilon: info.Epsilon, Snapshot: info}, nil
	} else if !errorIsUnknownSource(err) || s.od == nil {
		return 0, QueryInfo{}, err
	}
	res, qi, err := s.onDemandQuery(ctx, source, odRefine{v: v})
	if err != nil {
		return 0, QueryInfo{}, err
	}
	return res.estimate(v), qi, nil
}

// errorIsUnknownSource reports whether err is the untracked-source error —
// the only error the on-demand path may absorb.
func errorIsUnknownSource(err error) bool {
	return err != nil && errors.Is(err, ErrUnknownSource)
}

// odResult is a computed on-demand answer over one snapshot.
type odResult struct {
	// estimates is indexed by vertex; nil when the source lies outside the
	// snapshot (an isolated vertex: no walk from another vertex can step
	// into it, and its own walk contributes the α of its first step, so
	// π_v(s) = α·1{v=s} exactly).
	estimates []float64
	source    VertexID
	alpha     float64
}

func (r *odResult) estimate(v VertexID) float64 {
	if r.estimates == nil {
		if v == r.source {
			return r.alpha
		}
		return 0
	}
	if v < 0 || int(v) >= len(r.estimates) {
		return 0
	}
	return r.estimates[v]
}

func (r *odResult) topK(k int) []VertexScore {
	if r.estimates == nil {
		if k <= 0 {
			return nil
		}
		return []VertexScore{{Vertex: r.source, Score: r.alpha}}
	}
	return push.AppendTopKFunc(nil, len(r.estimates), func(i int) float64 {
		return r.estimates[i]
	}, k)
}

// odRefine selects where a query's Monte-Carlo budget goes: a top-k answer
// refines its candidate set, a point estimate refines just the requested
// vertex.
type odRefine struct {
	topK int      // when > 0: refine the top (topK + odRefinePad) estimates
	v    VertexID // when topK <= 0: refine this single vertex
}

// odRefinePad is how far past the requested k the refinement reaches, so a
// vertex just below the push's k-th place can still be promoted into the
// answer by its correction.
const odRefinePad = 16

// onDemandQuery computes the approximate answer for an untracked source and
// feeds the admission cache (possibly promoting the source).
func (s *Service) onDemandQuery(ctx context.Context, source VertexID, ref odRefine) (*odResult, QueryInfo, error) {
	od := s.od
	if source < 0 {
		return nil, QueryInfo{}, fmt.Errorf("dynppr: source must be non-negative, got %d", source)
	}
	start := time.Now()
	snap, err := od.snapshot(ctx)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	res := &odResult{source: source, alpha: s.opts.Options.Alpha}
	qi := QueryInfo{Approx: true}
	if int(source) < snap.view.NumVertices() {
		cfg := push.Config{Alpha: s.opts.Options.Alpha, Epsilon: od.opts.Epsilon}
		var pr *push.ColdPushResult
		var err error
		// A compacted snapshot runs on the dispatch-free CSR body; a snapshot
		// with live delta segments runs the identical push over the layered
		// view (bit-identical on equal graphs, touched-proportional to set up).
		if snap.base != nil {
			pr, err = push.ColdPushCSR(snap.base, source, cfg, od.opts.MaxPushes)
		} else {
			pr, err = push.ColdPush(snap.view, source, cfg, od.opts.MaxPushes)
		}
		if err != nil {
			return nil, QueryInfo{}, err
		}
		walks := od.refine(snap, source, pr, ref)
		res.estimates = pr.Estimates
		qi.Walks = walks
		qi.Epsilon = pr.MaxResidual
		qi.Snapshot = SnapshotInfo{
			Source:      source,
			MaxResidual: pr.MaxResidual,
			Epsilon:     pr.MaxResidual,
			Vertices:    snap.view.NumVertices(),
		}
	} else {
		// The source is outside the snapshot: an isolated vertex, answered
		// exactly (see odResult.estimates).
		qi.Snapshot = SnapshotInfo{Source: source, Vertices: snap.view.NumVertices()}
	}
	elapsed := time.Since(start)
	od.queries.Add(1)
	od.lastLatency.Store(int64(elapsed))
	od.totalLatency.Add(int64(elapsed))

	od.note(source)
	qi.Promoted = od.maybePromote(ctx, source)
	return res, qi, nil
}

// snapshot returns the pinned graph view for the current graph generation,
// building it on the pipeline goroutine when a mutation has invalidated the
// cached one. The build layers the current delta segments over the shared
// immutable base — O(segments touched since the last compaction), where the
// old implementation re-materialized a full CSR per generation.
func (od *onDemand) snapshot(ctx context.Context) (*odSnapshot, error) {
	s := od.svc
	if cur := od.snap.Load(); cur != nil && cur.gen == s.graphGen.Load() {
		return cur, nil
	}
	res := make(chan *odSnapshot, 1)
	if err := s.submitRead(ctx, func() {
		cur := od.snap.Load()
		// Concurrent refreshers coalesce: the generation is re-read on the
		// pipeline, where it cannot advance under us.
		if gen := s.graphGen.Load(); cur == nil || cur.gen != gen {
			view := s.g.View()
			cur = &odSnapshot{gen: gen, view: view, base: view.Base()}
			od.snap.Store(cur)
			od.snapshotBuilds.Add(1)
			od.lastSnapshotDelta.Store(int64(view.DeltaEdges()))
		}
		res <- cur
	}); err != nil {
		return nil, err
	}
	return <-res, nil
}

// refine spends the query's Monte-Carlo budget on the vertices the answer
// will actually surface. The exact push invariant is, for every v,
// π_v(s) = P(v) + Σ_u R(u)·π_v(u), and the endpoint of an α-terminating walk
// from v has distribution π_v(·) — so the mean leftover residual at the
// endpoints of walks started from v is an unbiased estimate of v's
// correction term. Each target receives an equal share of the RefineWalks
// budget. The advertised bound (MaxResidual) is unaffected: the true
// correction and its estimate both lie in [0, MaxResidual]. The rng is
// seeded from (Seed, source, snapshot generation) and targets are visited in
// rank order, so identical queries return identical answers.
func (od *onDemand) refine(snap *odSnapshot, source VertexID, pr *push.ColdPushResult, ref odRefine) int {
	w := od.opts.RefineWalks
	if w <= 0 || pr.MaxResidual <= 0 {
		return 0
	}
	var targets []VertexID
	if ref.topK > 0 {
		for _, vs := range push.AppendTopKFunc(nil, len(pr.Estimates), func(i int) float64 {
			return pr.Estimates[i]
		}, ref.topK+odRefinePad) {
			targets = append(targets, vs.Vertex)
		}
	} else if ref.v >= 0 && int(ref.v) < len(pr.Estimates) {
		targets = []VertexID{ref.v}
	}
	if len(targets) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(od.opts.Seed ^ int64(source)*0x5851F42D4C957F2D ^ int64(snap.gen)))
	alpha := od.svc.opts.Options.Alpha
	adj := snap.adj()
	per, extra := w/len(targets), w%len(targets)
	used := 0
	for i, v := range targets {
		wt := per
		if i < extra {
			wt++
		}
		if wt == 0 {
			break
		}
		var sum float64
		for j := 0; j < wt; j++ {
			end := montecarlo.WalkEndpoint(adj, graph.VertexID(v), alpha, od.opts.MaxWalkLength, rng)
			sum += pr.Residuals[end]
		}
		pr.Estimates[v] += sum / float64(wt)
		used += wt
	}
	od.walks.Add(int64(used))
	return used
}

// touch refreshes the last-use tick of an auto-promoted source so exact-path
// reads keep it warm against eviction. Called by the Query* entry points on
// tracked-path answers. Lock-free — the read path must not pay a mutex for
// promotion bookkeeping, or a promoted source would serve slower than a
// hand-tracked one (the parity the CI benchmark gate asserts).
func (od *onDemand) touch(source VertexID) {
	if od == nil || od.opts.PromoteAfter <= 0 {
		return
	}
	if e, ok := (*od.auto.Load())[source]; ok {
		e.Store(od.tick.Add(1))
	}
}

// note records one on-demand query against the admission cache, dropping the
// least recently used candidate when the cache is full.
func (od *onDemand) note(source VertexID) {
	if od.opts.PromoteAfter <= 0 {
		return
	}
	od.mu.Lock()
	defer od.mu.Unlock()
	od.clock++
	c := od.cand[source]
	if c == nil {
		if len(od.cand) >= od.opts.MaxCandidates {
			var coldest VertexID
			cold := int64(-1)
			for v, cc := range od.cand {
				if cold < 0 || cc.last < cold {
					cold, coldest = cc.last, v
				}
			}
			delete(od.cand, coldest)
		}
		c = &odCandidate{}
		od.cand[source] = c
	}
	c.count++
	c.last = od.clock
}

// maybePromote promotes source into tracked state once its query count
// reaches the threshold, evicting the coldest auto-promoted source first
// when the auto set is at capacity. Promotion failures (an overloaded
// pipeline) are swallowed — the query that triggered them already has its
// answer, and the candidate's count is kept so a later query retries.
func (od *onDemand) maybePromote(ctx context.Context, source VertexID) bool {
	if od.opts.PromoteAfter <= 0 {
		return false
	}
	s := od.svc
	od.mu.Lock()
	c := od.cand[source]
	if c == nil || c.count < od.opts.PromoteAfter {
		od.mu.Unlock()
		return false
	}
	victim := VertexID(-1)
	if auto := *od.auto.Load(); len(auto) >= od.opts.MaxAutoSources {
		cold := int64(-1)
		for v, last := range auto {
			if t := last.Load(); cold < 0 || t < cold {
				cold, victim = t, v
			}
		}
	}
	od.mu.Unlock()

	// The eviction and the addition go through the ordinary live
	// source-management path, outside od.mu (the pipeline never takes it, so
	// there is no lock-order hazard — just no reason to hold it while a cold
	// start runs).
	if victim >= 0 {
		err := s.RemoveSourceCtx(ctx, victim)
		if err != nil && !errors.Is(err, ErrUnknownSource) {
			return false // overloaded or closed: retry on a later query
		}
		od.mu.Lock()
		od.mutateAuto(func(m map[VertexID]*atomic.Int64) { delete(m, victim) })
		od.mu.Unlock()
		if err == nil {
			od.evictions.Add(1)
		}
	}
	if err := s.AddSourceCtx(ctx, source); err != nil {
		// "already tracked" means someone else (a concurrent promotion or a
		// manual AddSource) won the race; either way the source is tracked
		// now and the candidate entry has served its purpose.
		if _, tracked := (*s.table.Load())[source]; !tracked {
			return false
		}
		od.mu.Lock()
		delete(od.cand, source)
		od.mu.Unlock()
		return false
	}
	od.mu.Lock()
	delete(od.cand, source)
	e := new(atomic.Int64)
	e.Store(od.tick.Add(1))
	od.mutateAuto(func(m map[VertexID]*atomic.Int64) { m[source] = e })
	od.mu.Unlock()
	od.promotions.Add(1)
	return true
}
