// On-demand queries: error-bounded PPR answers for sources nobody
// registered in advance.
//
// The tracked path can never reach "millions of users" — each tracked source
// costs a full estimate/residual pair kept converged on every batch. The
// on-demand path answers the long tail instead: a one-shot run of the
// paper's local push (push.ColdPushCSR / push.ColdPush) over an immutable
// view of the current graph down to a coarse ε, optionally refined by
// deterministic Monte-Carlo walks (internal/montecarlo) from the answer's
// candidate vertices. The view is epoch-pinned and touched-proportional: it
// layers the delta segments recent batches produced over the shared
// immutable CSR base, so refreshing it after a mutation costs O(what the
// batch touched), not O(graph) — and when the graph is freshly compacted the
// queries run directly on the bare base segment. Both tiers estimate the same quantity — the contribution vector
// π_·(s) the live trackers maintain — so promoting a source tightens its
// error bound without ever changing the meaning of its answers. The result
// carries the achieved per-vertex bound so callers know what they got.
//
// Cold answers are computed concurrently but never redundantly: identical
// in-flight queries are singleflight-coalesced by (source, graph
// generation), the pushes themselves run on a small bounded worker pool
// with ctx-bounded admission (overload still surfaces ErrOverloaded, never
// partial effects), and completed answers land in a bounded LRU result
// cache under the same (source, generation) key — a repeat query between
// graph mutations is an O(k) read, and a mutation invalidates the cache for
// free because the generation moves (compaction does not bump it). A
// per-query latency budget (QueryOptions.Budget) buys adaptive ε: the push
// starts at the configured coarse ε and keeps refining while budget
// remains, always reporting the achieved bound.
//
// A frequency-based admission cache watches on-demand traffic: a source
// queried at least PromoteAfter times is promoted into tracked state through
// the live AddSource path, and when the auto-promoted set is at capacity the
// coldest auto-promoted source is evicted first (manually added sources are
// never touched). Hot long-tail users therefore graduate to exact
// incremental maintenance automatically, and fall back to approximate
// answers — never errors — when they cool off.
package dynppr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/montecarlo"
	"dynppr/internal/push"
)

// OnDemandOptions configure the approximate query path for untracked
// sources. The zero value disables it: QueryTopK/QueryEstimate then behave
// exactly like TopK/Estimate, returning ErrUnknownSource for untracked
// sources.
type OnDemandOptions struct {
	// Enabled turns the on-demand path on.
	Enabled bool
	// Epsilon is the push residual threshold for on-demand queries. It is
	// deliberately coarser than the tracked ε — the push cost grows like
	// 1/ε. <= 0 selects 1e-4.
	Epsilon float64
	// RefineWalks is the per-query Monte-Carlo walk budget spent after the
	// push on the answer's candidate vertices (the top-k entries, or the
	// single requested vertex of an estimate). 0 disables refinement; the
	// advertised bound is unaffected either way (walks reduce expected
	// error, not the worst case).
	RefineWalks int
	// Seed drives the refinement walks. Results for a given (seed, source,
	// graph snapshot) are reproducible.
	Seed int64
	// PromoteAfter is the query-count threshold T at which an untracked
	// source is promoted into tracked state. 0 disables promotion.
	PromoteAfter int
	// MaxAutoSources caps how many auto-promoted sources may be tracked at
	// once; at capacity the coldest auto-promoted source is evicted to make
	// room. Manually added sources are never evicted. <= 0 selects 64.
	MaxAutoSources int
	// MaxCandidates bounds the admission cache (the per-source query
	// counters); at capacity the least recently queried candidate is
	// dropped. <= 0 selects 4096.
	MaxCandidates int
	// MaxPushes bounds the work of a single on-demand push. When the cap is
	// hit the answer is still sound — the advertised epsilon grows to cover
	// the unpushed residual. <= 0 selects 4,000,000.
	MaxPushes int64
	// MaxWalkLength caps each refinement walk; <= 0 selects 1000.
	MaxWalkLength int
	// Workers bounds how many cold pushes execute concurrently. Queries
	// beyond that wait for a worker under ctx-bounded admission — if none
	// frees up before the context is done the query sheds with
	// ErrOverloaded, having had no effect. <= 0 selects a GOMAXPROCS-derived
	// default.
	Workers int
	// ResultCache caps the bounded LRU cache of computed cold answers,
	// keyed by (source, graph generation). Repeat queries for a source
	// between graph mutations are O(k) reads of the cached answer; any
	// effective mutation moves the generation and so invalidates the cache
	// for free (compaction does not). 0 selects 256; negative disables
	// caching.
	ResultCache int
}

// withDefaults resolves the zero values documented on each field.
func (o OnDemandOptions) withDefaults() OnDemandOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	if o.MaxAutoSources <= 0 {
		o.MaxAutoSources = 64
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	if o.MaxPushes <= 0 {
		o.MaxPushes = 4_000_000
	}
	if o.MaxWalkLength <= 0 {
		o.MaxWalkLength = 1000
	}
	if o.Workers <= 0 {
		o.Workers = fp.DefaultWorkers()
	}
	if o.ResultCache == 0 {
		o.ResultCache = 256
	}
	return o
}

// QueryOptions tune a single Query* call. The zero value is the default
// behavior: push exactly to the configured on-demand ε, no latency budget.
type QueryOptions struct {
	// Budget is a per-query latency target for the cold-push work. When set,
	// the push spends it adaptively: it first runs to the configured coarse
	// ε (that level is never time-truncated), then keeps halving ε while
	// budget remains — never past the service's tracked ε — and reports the
	// achieved bound in QueryInfo.Epsilon. Every emitted answer is a
	// deterministic function of (graph, source, configuration, achieved
	// refinement level); only which level the budget buys depends on timing,
	// so budgeted answers are cached and coalesced separately from
	// unbudgeted ones, which stay bit-deterministic.
	//
	// The budget bounds compute, not admission: waiting for a pool worker is
	// governed by the call's context.
	Budget time.Duration
}

// QueryInfo describes how a QueryTopK/QueryEstimate answer was produced.
type QueryInfo struct {
	// Approx is true when the answer came from the on-demand path (one-shot
	// push + optional Monte-Carlo refinement) rather than a tracked
	// source's converged snapshot.
	Approx bool
	// Epsilon bounds the absolute error of every estimate in the answer:
	// the snapshot's configured ε on the tracked path, the push's achieved
	// max residual on the on-demand path. Both are per-vertex bounds on the
	// same contribution vector.
	Epsilon float64
	// Snapshot is the snapshot metadata of the answer. On the on-demand
	// path it is synthesized: Epoch 0 marks "not a tracked snapshot", and
	// MaxResidual/Epsilon carry the push's achieved values.
	Snapshot SnapshotInfo
	// Walks is the number of Monte-Carlo refinement walks run (on-demand
	// only).
	Walks int
	// Promoted reports that this query crossed the promotion threshold and
	// the source is now tracked; subsequent reads take the exact path.
	Promoted bool
	// Cached reports that the answer was served from the on-demand result
	// cache rather than recomputed. A cached answer carries the QueryInfo
	// of the query that computed it (same graph generation, so same
	// bound); its Monte-Carlo refinement targeted that query's answer
	// shape, which never affects the advertised bound.
	Cached bool
	// Coalesced reports that this query shared the computation of an
	// identical in-flight query instead of pushing redundantly.
	Coalesced bool
	// Truncated reports that the push stopped early (MaxPushes or the
	// latency budget); Epsilon still soundly bounds the error.
	Truncated bool
}

// onDemand is the Service's on-demand query engine. All fields are
// internally synchronized; the Service calls it from arbitrary reader
// goroutines.
type onDemand struct {
	opts OnDemandOptions
	svc  *Service

	// snap caches the graph view the queries run against, keyed by the
	// service's graph generation. It is rebuilt on the pipeline goroutine
	// (serialized with writes — Graph itself is not safe for concurrent use),
	// at a cost proportional to the delta segments present, not graph size.
	snap atomic.Pointer[odSnapshot]

	// tasks hands cold-push jobs to the worker pool. It is unbuffered on
	// purpose: a job is either picked up by a live worker or not submitted
	// at all, so ctx-bounded admission can never strand accepted work.
	tasks     chan func()
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// fmu guards the singleflight table of in-flight cold computations.
	fmu     sync.Mutex
	flights map[odFlightKey]*odFlight

	// cache is the bounded LRU of computed answers; nil when disabled.
	cache *odCache

	// mu guards the admission cache and serializes auto-registry mutations.
	mu    sync.Mutex
	clock int64
	cand  map[VertexID]*odCandidate

	// auto maps each auto-promoted source to its last-use tick. touch() runs
	// on every tracked-path read, so the registry is copy-on-write: readers
	// load the map lock-free and refresh recency through per-entry atomics;
	// mutations (promotion, eviction — rare) publish a fresh copy under mu.
	auto atomic.Pointer[map[VertexID]*atomic.Int64]
	tick atomic.Int64 // recency clock for auto sources

	queries           atomic.Int64
	walks             atomic.Int64
	snapshotBuilds    atomic.Int64
	lastSnapshotDelta atomic.Int64
	promotions        atomic.Int64
	evictions         atomic.Int64
	coldPushes        atomic.Int64
	coalesced         atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	budgetTruncated   atomic.Int64
	poolDepth         atomic.Int64
	lastLatency       atomic.Int64 // nanoseconds
	totalLatency      atomic.Int64 // nanoseconds
}

type odSnapshot struct {
	gen uint64
	// view is the epoch-pinned layered view cold queries walk.
	view *graph.View
	// base is view's bare CSR base segment when the view carries no deltas
	// (the graph was compacted), nil otherwise. Queries use it to take the
	// dispatch-free CSR fast paths.
	base *graph.CSR
}

// adj returns the adjacency cold-query work should run on: the bare base
// segment when available, the layered view otherwise.
func (s *odSnapshot) adj() graph.Adjacency {
	if s.base != nil {
		return s.base
	}
	return s.view
}

// odCandidate is one admission-cache entry: how often and how recently an
// untracked source has been queried.
type odCandidate struct {
	count int
	last  int64
}

func newOnDemand(svc *Service, opts OnDemandOptions) *onDemand {
	od := &onDemand{
		opts:    opts.withDefaults(),
		svc:     svc,
		cand:    make(map[VertexID]*odCandidate),
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
		flights: make(map[odFlightKey]*odFlight),
	}
	if od.opts.ResultCache > 0 {
		od.cache = newODCache(od.opts.ResultCache)
	}
	empty := make(map[VertexID]*atomic.Int64)
	od.auto.Store(&empty)
	od.wg.Add(od.opts.Workers)
	for i := 0; i < od.opts.Workers; i++ {
		go od.worker()
	}
	return od
}

// worker executes cold-push jobs until the pool shuts down. A job accepted
// from tasks always runs to completion — it touches only pinned immutable
// snapshots, so it is safe even while the service closes around it.
func (od *onDemand) worker() {
	defer od.wg.Done()
	for {
		select {
		case <-od.quit:
			return
		case job := <-od.tasks:
			job()
		}
	}
}

// close shuts the worker pool down and waits it out. Queries blocked in pool
// admission fail with ErrServiceClosed; in-flight pushes complete and their
// waiters get the answer.
func (od *onDemand) close() {
	od.closeOnce.Do(func() { close(od.quit) })
	od.wg.Wait()
}

// mutateAuto publishes a modified copy of the auto-source registry. Callers
// hold od.mu (serializing mutations); touch() readers stay lock-free.
func (od *onDemand) mutateAuto(f func(map[VertexID]*atomic.Int64)) {
	old := *od.auto.Load()
	m := make(map[VertexID]*atomic.Int64, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	f(m)
	od.auto.Store(&m)
}

// OnDemandStats reports the on-demand query path's counters.
type OnDemandStats struct {
	// Queries counts answers served by the on-demand (approximate) path —
	// computed, coalesced, or cached alike. Reads that hit a tracked source,
	// including promoted ones, do not count here.
	Queries int64
	// ColdPushes counts cold pushes actually executed; Queries minus
	// ColdPushes is the work the coalescer and result cache saved.
	ColdPushes int64
	// CacheHits and CacheMisses count result-cache lookups (0 when the
	// cache is disabled). Coalesced counts queries that shared an identical
	// in-flight computation instead of pushing redundantly.
	CacheHits   int64
	CacheMisses int64
	Coalesced   int64
	// BudgetTruncated counts budgeted queries whose push was stopped by the
	// latency budget before reaching the configured ε.
	BudgetTruncated int64
	// CacheEntries and CacheCapacity describe the result cache;
	// PoolWorkers and PoolDepth the cold-push worker pool (depth = pushes
	// executing right now).
	CacheEntries  int
	CacheCapacity int
	PoolWorkers   int
	PoolDepth     int64
	// Walks counts Monte-Carlo refinement walks across all queries.
	Walks int64
	// SnapshotBuilds counts graph-view rebuilds (one per graph mutation
	// generation actually queried, not per query). Each build copies only
	// the delta-segment headers present at that moment, not the graph.
	SnapshotBuilds int64
	// LastSnapshotDeltaEdges is the number of delta-segment adjacency
	// entries the most recent view build layered over the shared CSR base —
	// the touched-proportional cost the ondemand bench asserts on. 0 means
	// the last build handed out a fully compacted base.
	LastSnapshotDeltaEdges int64
	// Promotions and Evictions count admission-cache decisions: sources
	// promoted into tracked state, and auto-promoted sources evicted to
	// make room.
	Promotions int64
	Evictions  int64
	// Candidates is the current admission-cache size, AutoSources the
	// number of currently tracked auto-promoted sources.
	Candidates  int
	AutoSources int
	// LastLatency and TotalLatency time on-demand answers (push +
	// refinement, excluding promotion work).
	LastLatency  time.Duration
	TotalLatency time.Duration
}

func (od *onDemand) stats() *OnDemandStats {
	od.mu.Lock()
	cands := len(od.cand)
	od.mu.Unlock()
	autos := len(*od.auto.Load())
	st := &OnDemandStats{
		Queries:                od.queries.Load(),
		ColdPushes:             od.coldPushes.Load(),
		CacheHits:              od.cacheHits.Load(),
		CacheMisses:            od.cacheMisses.Load(),
		Coalesced:              od.coalesced.Load(),
		BudgetTruncated:        od.budgetTruncated.Load(),
		PoolWorkers:            od.opts.Workers,
		PoolDepth:              od.poolDepth.Load(),
		Walks:                  od.walks.Load(),
		SnapshotBuilds:         od.snapshotBuilds.Load(),
		LastSnapshotDeltaEdges: od.lastSnapshotDelta.Load(),
		Promotions:             od.promotions.Load(),
		Evictions:              od.evictions.Load(),
		Candidates:             cands,
		AutoSources:            autos,
		LastLatency:            time.Duration(od.lastLatency.Load()),
		TotalLatency:           time.Duration(od.totalLatency.Load()),
	}
	if od.cache != nil {
		st.CacheEntries = od.cache.size()
		st.CacheCapacity = od.cache.cap
	}
	return st
}

// QueryTopK returns the k vertices with the largest PPR estimates for
// source. A tracked source is served from its converged snapshot exactly
// like TopK; an untracked source is answered by the on-demand path when it
// is enabled (QueryInfo.Approx true, QueryInfo.Epsilon the achieved bound)
// and with ErrUnknownSource otherwise.
func (s *Service) QueryTopK(source VertexID, k int) ([]VertexScore, QueryInfo, error) {
	return s.QueryTopKCtx(context.Background(), source, k)
}

// QueryTopKCtx is QueryTopK with bounded admission for the pipeline and
// pool work an on-demand answer may need (snapshot refresh after a graph
// mutation, a cold-push worker slot, promotion): if those stay contended
// until ctx is done the query gives up with ErrOverloaded, having had no
// effect. Tracked-source reads never touch the pipeline and ignore ctx.
func (s *Service) QueryTopKCtx(ctx context.Context, source VertexID, k int) ([]VertexScore, QueryInfo, error) {
	return s.QueryTopKOpts(ctx, source, k, QueryOptions{})
}

// QueryTopKOpts is QueryTopKCtx with per-query options (see QueryOptions).
func (s *Service) QueryTopKOpts(ctx context.Context, source VertexID, k int, opts QueryOptions) ([]VertexScore, QueryInfo, error) {
	if top, info, err := s.TopKInfo(source, k); err == nil {
		return top, QueryInfo{Epsilon: info.Epsilon, Snapshot: info}, nil
	} else if !errorIsUnknownSource(err) || s.od == nil {
		return nil, QueryInfo{}, err
	}
	e, qi, err := s.onDemandQuery(ctx, source, odRefine{topK: k}, opts)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	return e.topK(k), qi, nil
}

// QueryEstimate returns the PPR estimate of v with respect to source,
// falling back to the on-demand path for untracked sources exactly like
// QueryTopK.
func (s *Service) QueryEstimate(source, v VertexID) (float64, QueryInfo, error) {
	return s.QueryEstimateCtx(context.Background(), source, v)
}

// QueryEstimateCtx is QueryEstimate with bounded admission (see
// QueryTopKCtx).
func (s *Service) QueryEstimateCtx(ctx context.Context, source, v VertexID) (float64, QueryInfo, error) {
	return s.QueryEstimateOpts(ctx, source, v, QueryOptions{})
}

// QueryEstimateOpts is QueryEstimateCtx with per-query options (see
// QueryOptions).
func (s *Service) QueryEstimateOpts(ctx context.Context, source, v VertexID, opts QueryOptions) (float64, QueryInfo, error) {
	if est, info, err := s.EstimateInfo(source, v); err == nil {
		return est, QueryInfo{Epsilon: info.Epsilon, Snapshot: info}, nil
	} else if !errorIsUnknownSource(err) || s.od == nil {
		return 0, QueryInfo{}, err
	}
	e, qi, err := s.onDemandQuery(ctx, source, odRefine{v: v}, opts)
	if err != nil {
		return 0, QueryInfo{}, err
	}
	return e.res.estimate(v), qi, nil
}

// errorIsUnknownSource reports whether err is the untracked-source error —
// the only error the on-demand path may absorb.
func errorIsUnknownSource(err error) bool {
	return err != nil && errors.Is(err, ErrUnknownSource)
}

// odResult is a computed on-demand answer over one snapshot.
type odResult struct {
	// estimates is indexed by vertex; nil when the source lies outside the
	// snapshot (an isolated vertex: no walk from another vertex can step
	// into it, and its own walk contributes the α of its first step, so
	// π_v(s) = α·1{v=s} exactly).
	estimates []float64
	source    VertexID
	alpha     float64
}

func (r *odResult) estimate(v VertexID) float64 {
	if r.estimates == nil {
		if v == r.source {
			return r.alpha
		}
		return 0
	}
	if v < 0 || int(v) >= len(r.estimates) {
		return 0
	}
	return r.estimates[v]
}

func (r *odResult) topK(k int) []VertexScore {
	if r.estimates == nil {
		if k <= 0 {
			return nil
		}
		return []VertexScore{{Vertex: r.source, Score: r.alpha}}
	}
	return push.AppendTopKFunc(nil, len(r.estimates), func(i int) float64 {
		return r.estimates[i]
	}, k)
}

// odKey identifies a cold answer: the (source, graph generation) pair the
// coalescer and the result cache are keyed by. The generation moves on every
// effective mutation (and not on compaction), so staleness needs no clocks.
type odKey struct {
	source VertexID
	gen    uint64
}

// odFlightKey is the singleflight key. Budgeted and unbudgeted computations
// never coalesce with each other: an unbudgeted answer must stay a
// bit-deterministic function of (source, generation), which a
// timing-dependent budgeted push cannot promise.
type odFlightKey struct {
	key      odKey
	budgeted bool
}

// odFlight is one in-flight cold computation; concurrent identical queries
// wait on done and share entry/err.
type odFlight struct {
	done  chan struct{}
	entry *odEntry
	err   error
}

// odEntry is one computed cold answer. It is immutable after publication
// except for the lazily memoized ranking, so cached and coalesced readers
// share it freely.
type odEntry struct {
	res   *odResult
	eps   float64
	walks int
	// truncated records that the push stopped early (MaxPushes or budget);
	// eps covers the unfinished work either way.
	truncated bool
	// budgeted entries were computed under a latency budget. The cache
	// serves them only to budgeted queries — an unbudgeted query recomputes
	// (and overwrites the entry with) the deterministic full-ε answer.
	budgeted bool
	vertices int

	// mu guards top, the memoized exact top-len ranking, built on the first
	// topK read and extended if a larger k arrives. scoreBetter is a strict
	// total order, so a prefix of a longer ranking is bit-identical to a
	// direct top-k selection.
	mu  sync.Mutex
	top []VertexScore
}

// topK returns the entry's top-k ranking, memoized so cache hits are O(k)
// after the first read instead of an O(n log k) scan per query.
func (e *odEntry) topK(k int) []VertexScore {
	r := e.res
	if r.estimates == nil || k <= 0 {
		return r.topK(k)
	}
	if k > len(r.estimates) {
		k = len(r.estimates)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.top) < k {
		want := 2 * k
		if want < 64 {
			want = 64
		}
		e.top = push.AppendTopKFunc(nil, len(r.estimates), func(i int) float64 {
			return r.estimates[i]
		}, want)
	}
	out := make([]VertexScore, k)
	copy(out, e.top[:k])
	return out
}

// queryInfo synthesizes the QueryInfo a read of this entry reports.
func (e *odEntry) queryInfo(source VertexID) QueryInfo {
	return QueryInfo{
		Approx:    true,
		Epsilon:   e.eps,
		Walks:     e.walks,
		Truncated: e.truncated,
		Snapshot: SnapshotInfo{
			Source:      source,
			MaxResidual: e.eps,
			Epsilon:     e.eps,
			Vertices:    e.vertices,
		},
	}
}

// odRefine selects where a query's Monte-Carlo budget goes: a top-k answer
// refines its candidate set, a point estimate refines just the requested
// vertex.
type odRefine struct {
	topK int      // when > 0: refine the top (topK + odRefinePad) estimates
	v    VertexID // when topK <= 0: refine this single vertex
}

// odRefinePad is how far past the requested k the refinement reaches, so a
// vertex just below the push's k-th place can still be promoted into the
// answer by its correction.
const odRefinePad = 16

// onDemandQuery answers an untracked source — from the result cache, by
// joining an identical in-flight computation, or by running the push on the
// worker pool — and feeds the admission cache (possibly promoting the
// source).
func (s *Service) onDemandQuery(ctx context.Context, source VertexID, ref odRefine, qo QueryOptions) (*odEntry, QueryInfo, error) {
	od := s.od
	if source < 0 {
		return nil, QueryInfo{}, fmt.Errorf("dynppr: source must be non-negative, got %d", source)
	}
	start := time.Now()
	snap, err := od.snapshot(ctx)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	n := snap.view.NumVertices()
	if int(source) >= n {
		// The source is outside the snapshot: an isolated vertex, answered
		// exactly (see odResult.estimates) — no push, no cache.
		e := &odEntry{
			res:      &odResult{source: source, alpha: s.opts.Options.Alpha},
			vertices: n,
		}
		qi := e.queryInfo(source)
		qi.Snapshot.MaxResidual, qi.Snapshot.Epsilon = 0, 0
		od.finish(ctx, source, start, &qi)
		return e, qi, nil
	}
	key := odKey{source: source, gen: snap.gen}
	budgeted := qo.Budget > 0
	if e := od.cacheGet(key, budgeted); e != nil {
		qi := e.queryInfo(source)
		qi.Cached = true
		od.finish(ctx, source, start, &qi)
		return e, qi, nil
	}
	e, shared, err := od.compute(ctx, key, snap, ref, qo)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	qi := e.queryInfo(source)
	qi.Coalesced = shared
	od.finish(ctx, source, start, &qi)
	return e, qi, nil
}

// finish settles a served on-demand answer: latency accounting, the
// admission-cache note, and the possible promotion. Every served query
// counts — cached and coalesced answers are demand too.
func (od *onDemand) finish(ctx context.Context, source VertexID, start time.Time, qi *QueryInfo) {
	elapsed := time.Since(start)
	od.queries.Add(1)
	od.lastLatency.Store(int64(elapsed))
	od.totalLatency.Add(int64(elapsed))
	od.note(source)
	qi.Promoted = od.maybePromote(ctx, source)
}

// compute coalesces onto an identical in-flight computation or runs the cold
// push on the worker pool. The bool result reports sharing (for stats and
// QueryInfo.Coalesced).
func (od *onDemand) compute(ctx context.Context, key odKey, snap *odSnapshot, ref odRefine, qo QueryOptions) (*odEntry, bool, error) {
	fkey := odFlightKey{key: key, budgeted: qo.Budget > 0}
	for {
		od.fmu.Lock()
		if f, ok := od.flights[fkey]; ok {
			od.fmu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					// The leader failed pool admission on its own context.
					// Ours may still be live — retry; the dead flight is
					// gone, so the next lap either leads or joins a fresh
					// one.
					if errors.Is(f.err, ErrOverloaded) && ctx.Err() == nil {
						continue
					}
					return nil, true, f.err
				}
				od.coalesced.Add(1)
				return f.entry, true, nil
			case <-ctx.Done():
				return nil, true, fmt.Errorf("%w: %v", ErrOverloaded, ctx.Err())
			}
		}
		f := &odFlight{done: make(chan struct{})}
		od.flights[fkey] = f
		od.fmu.Unlock()

		settle := func() {
			od.fmu.Lock()
			delete(od.flights, fkey)
			od.fmu.Unlock()
			close(f.done)
		}
		job := func() {
			defer settle()
			od.poolDepth.Add(1)
			defer od.poolDepth.Add(-1)
			f.entry, f.err = od.runCold(key, snap, ref, qo)
		}
		// Pool admission. The task channel is unbuffered: a successful send
		// means a worker has the job and will finish it, so waiting on
		// f.done below cannot hang — not even across Close.
		select {
		case od.tasks <- job:
			<-f.done
			return f.entry, false, f.err
		case <-od.quit:
			f.err = ErrServiceClosed
			settle()
			return nil, false, f.err
		case <-ctx.Done():
			f.err = fmt.Errorf("%w: %v", ErrOverloaded, ctx.Err())
			settle()
			return nil, false, f.err
		}
	}
}

// runCold executes one cold push + refinement on a pool worker and publishes
// the entry to the result cache.
func (od *onDemand) runCold(key odKey, snap *odSnapshot, ref odRefine, qo QueryOptions) (*odEntry, error) {
	s := od.svc
	cfg := push.Config{Alpha: s.opts.Options.Alpha, Epsilon: od.opts.Epsilon}
	bounds := push.ColdPushBounds{
		MaxPushes: od.opts.MaxPushes,
		Budget:    qo.Budget,
		// The adaptive ladder never refines past the tracked ε — promotion
		// must stay the strictly better tier.
		MinEpsilon: s.opts.Options.Epsilon,
	}
	var pr *push.ColdPushResult
	var err error
	// A compacted snapshot runs on the dispatch-free CSR body; a snapshot
	// with live delta segments runs the identical push over the layered
	// view (bit-identical on equal graphs, touched-proportional to set up).
	if snap.base != nil {
		pr, err = push.ColdPushCSRBounded(snap.base, key.source, cfg, bounds)
	} else {
		pr, err = push.ColdPushBounded(snap.view, key.source, cfg, bounds)
	}
	if err != nil {
		return nil, err
	}
	od.coldPushes.Add(1)
	if pr.BudgetExhausted {
		od.budgetTruncated.Add(1)
	}
	walks := od.refine(snap, key.source, pr, ref)
	e := &odEntry{
		res:       &odResult{estimates: pr.Estimates, source: key.source, alpha: cfg.Alpha},
		eps:       pr.MaxResidual,
		walks:     walks,
		truncated: pr.Capped || pr.BudgetExhausted,
		budgeted:  qo.Budget > 0,
		vertices:  snap.view.NumVertices(),
	}
	od.cachePut(key, e)
	return e, nil
}

// cacheGet looks the (source, generation) key up, honoring the budgeted-gate
// policy documented on odEntry.budgeted.
func (od *onDemand) cacheGet(key odKey, budgeted bool) *odEntry {
	if od.cache == nil {
		return nil
	}
	e := od.cache.get(key, budgeted)
	if e != nil {
		od.cacheHits.Add(1)
	} else {
		od.cacheMisses.Add(1)
	}
	return e
}

func (od *onDemand) cachePut(key odKey, e *odEntry) {
	if od.cache != nil {
		od.cache.put(key, e)
	}
}

// odCache is the bounded LRU of cold answers. Entries for stale generations
// are never requested again (the generation only advances) and age out of
// the tail naturally.
type odCache struct {
	mu  sync.Mutex
	cap int
	m   map[odKey]*odCacheNode
	// Intrusive doubly-linked LRU list; head is most recent.
	head, tail *odCacheNode
}

type odCacheNode struct {
	key        odKey
	e          *odEntry
	prev, next *odCacheNode
}

func newODCache(capacity int) *odCache {
	return &odCache{cap: capacity, m: make(map[odKey]*odCacheNode, capacity)}
}

func (c *odCache) get(key odKey, budgeted bool) *odEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.m[key]
	if n == nil {
		return nil
	}
	if n.e.budgeted != budgeted {
		// Budgeted and unbudgeted answers never serve each other: an
		// unbudgeted query must get the deterministic full-ε answer, and a
		// budgeted query must get the chance to refine past it rather than
		// being pinned to a coarse cached entry. The recompute's put() will
		// overwrite this entry (one slot per (source, generation); mixed
		// traffic on one source alternates the slot, which is sound — every
		// answer carries its own achieved bound).
		return nil
	}
	c.moveToFront(n)
	return n.e
}

func (c *odCache) put(key odKey, e *odEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.m[key]; n != nil {
		n.e = e
		c.moveToFront(n)
		return
	}
	n := &odCacheNode{key: key, e: e}
	c.m[key] = n
	c.pushFront(n)
	for len(c.m) > c.cap {
		last := c.tail
		c.unlink(last)
		delete(c.m, last.key)
	}
}

func (c *odCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *odCache) pushFront(n *odCacheNode) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *odCache) unlink(n *odCacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *odCache) moveToFront(n *odCacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// snapshot returns the pinned graph view for the current graph generation,
// building it on the pipeline goroutine when a mutation has invalidated the
// cached one. The build layers the current delta segments over the shared
// immutable base — O(segments touched since the last compaction), where the
// old implementation re-materialized a full CSR per generation.
func (od *onDemand) snapshot(ctx context.Context) (*odSnapshot, error) {
	s := od.svc
	if cur := od.snap.Load(); cur != nil && cur.gen == s.graphGen.Load() {
		return cur, nil
	}
	res := make(chan *odSnapshot, 1)
	if err := s.submitRead(ctx, func() {
		cur := od.snap.Load()
		// Concurrent refreshers coalesce: the generation is re-read on the
		// pipeline, where it cannot advance under us.
		if gen := s.graphGen.Load(); cur == nil || cur.gen != gen {
			view := s.g.View()
			cur = &odSnapshot{gen: gen, view: view, base: view.Base()}
			od.snap.Store(cur)
			od.snapshotBuilds.Add(1)
			od.lastSnapshotDelta.Store(int64(view.DeltaEdges()))
		}
		res <- cur
	}); err != nil {
		return nil, err
	}
	return <-res, nil
}

// refine spends the query's Monte-Carlo budget on the vertices the answer
// will actually surface. The exact push invariant is, for every v,
// π_v(s) = P(v) + Σ_u R(u)·π_v(u), and the endpoint of an α-terminating walk
// from v has distribution π_v(·) — so the mean leftover residual at the
// endpoints of walks started from v is an unbiased estimate of v's
// correction term. Each target receives an equal share of the RefineWalks
// budget. The advertised bound (MaxResidual) is unaffected: the true
// correction and its estimate both lie in [0, MaxResidual]. The rng is
// seeded from (Seed, source, snapshot generation) and targets are visited in
// rank order, so identical queries return identical answers.
func (od *onDemand) refine(snap *odSnapshot, source VertexID, pr *push.ColdPushResult, ref odRefine) int {
	w := od.opts.RefineWalks
	if w <= 0 || pr.MaxResidual <= 0 {
		return 0
	}
	var targets []VertexID
	if ref.topK > 0 {
		for _, vs := range push.AppendTopKFunc(nil, len(pr.Estimates), func(i int) float64 {
			return pr.Estimates[i]
		}, ref.topK+odRefinePad) {
			targets = append(targets, vs.Vertex)
		}
	} else if ref.v >= 0 && int(ref.v) < len(pr.Estimates) {
		targets = []VertexID{ref.v}
	}
	if len(targets) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(int64(odSeed(od.opts.Seed, source, snap.gen))))
	alpha := od.svc.opts.Options.Alpha
	adj := snap.adj()
	per, extra := w/len(targets), w%len(targets)
	used := 0
	for i, v := range targets {
		wt := per
		if i < extra {
			wt++
		}
		if wt == 0 {
			break
		}
		var sum float64
		for j := 0; j < wt; j++ {
			end := montecarlo.WalkEndpoint(adj, graph.VertexID(v), alpha, od.opts.MaxWalkLength, rng)
			sum += pr.Residuals[end]
		}
		pr.Estimates[v] += sum / float64(wt)
		used += wt
	}
	od.walks.Add(int64(used))
	return used
}

// odSeed derives the refinement rng stream for (seed, source, generation).
// Each input is passed through splitmix64 before it is folded in, so
// distinct (source, gen) pairs get distinct streams — a plain xor of
// products lets pairs collide (e.g. any two pairs whose terms cancel).
func odSeed(seed int64, source VertexID, gen uint64) uint64 {
	x := splitmix64(uint64(seed) ^ splitmix64(uint64(source)))
	return splitmix64(x ^ gen)
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap
// bijective mixer whose outputs are equidistributed over 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// touch refreshes the last-use tick of an auto-promoted source so exact-path
// reads keep it warm against eviction. Called from the shared tracked-read
// lookup, so every read API — TopK, Estimate, their Info variants, and the
// Query* entry points on tracked answers — counts as use. Lock-free — the
// read path must not pay a mutex for promotion bookkeeping, or a promoted
// source would serve slower than a hand-tracked one (the parity the CI
// benchmark gate asserts).
func (od *onDemand) touch(source VertexID) {
	if od == nil || od.opts.PromoteAfter <= 0 {
		return
	}
	if e, ok := (*od.auto.Load())[source]; ok {
		e.Store(od.tick.Add(1))
	}
}

// note records one on-demand query against the admission cache, dropping the
// least recently used candidate when the cache is full.
func (od *onDemand) note(source VertexID) {
	if od.opts.PromoteAfter <= 0 {
		return
	}
	od.mu.Lock()
	defer od.mu.Unlock()
	od.clock++
	c := od.cand[source]
	if c == nil {
		if len(od.cand) >= od.opts.MaxCandidates {
			var coldest VertexID
			cold := int64(-1)
			for v, cc := range od.cand {
				if cold < 0 || cc.last < cold {
					cold, coldest = cc.last, v
				}
			}
			delete(od.cand, coldest)
		}
		c = &odCandidate{}
		od.cand[source] = c
	}
	c.count++
	c.last = od.clock
}

// maybePromote promotes source into tracked state once its query count
// reaches the threshold, then evicts the coldest auto-promoted source when
// the auto set ran over capacity. The order matters: the add happens FIRST,
// so a failed promotion (overloaded pipeline) tears nothing down — the old
// evict-then-add order could lose a healthy tracked source and gain nothing.
// MaxAutoSources is policy, not a hard cap; the set transiently holds one
// extra entry between the add and the eviction. Promotion failures are
// swallowed — the query that triggered them already has its answer, and the
// candidate's count is kept so a later query retries.
func (od *onDemand) maybePromote(ctx context.Context, source VertexID) bool {
	if od.opts.PromoteAfter <= 0 {
		return false
	}
	s := od.svc
	od.mu.Lock()
	c := od.cand[source]
	if c == nil || c.count < od.opts.PromoteAfter {
		od.mu.Unlock()
		return false
	}
	od.mu.Unlock()

	// The addition and the eviction go through the ordinary live
	// source-management path, outside od.mu (the pipeline never takes it, so
	// there is no lock-order hazard — just no reason to hold it while a cold
	// start runs).
	if err := s.AddSourceCtx(ctx, source); err != nil {
		// "already tracked" means someone else (a concurrent promotion or a
		// manual AddSource) won the race; either way the source is tracked
		// now and the candidate entry has served its purpose.
		if _, tracked := (*s.table.Load())[source]; !tracked {
			return false // overloaded or closed: retry on a later query
		}
		od.mu.Lock()
		delete(od.cand, source)
		od.mu.Unlock()
		return false
	}
	victim := VertexID(-1)
	od.mu.Lock()
	delete(od.cand, source)
	e := new(atomic.Int64)
	e.Store(od.tick.Add(1))
	od.mutateAuto(func(m map[VertexID]*atomic.Int64) { m[source] = e })
	if auto := *od.auto.Load(); len(auto) > od.opts.MaxAutoSources {
		cold := int64(-1)
		for v, last := range auto {
			if v == source {
				continue
			}
			if t := last.Load(); cold < 0 || t < cold {
				cold, victim = t, v
			}
		}
	}
	od.mu.Unlock()
	od.promotions.Add(1)
	if victim >= 0 {
		err := s.RemoveSourceCtx(ctx, victim)
		if err == nil || errors.Is(err, ErrUnknownSource) {
			od.mu.Lock()
			od.mutateAuto(func(m map[VertexID]*atomic.Int64) { delete(m, victim) })
			od.mu.Unlock()
		}
		// A failed removal (overloaded pipeline) leaves the registry
		// transiently over capacity; the next promotion picks a victim
		// again.
		if err == nil {
			od.evictions.Add(1)
		}
	}
	return true
}
