// Package dynppr maintains approximate Personalized PageRank (PPR) vectors
// over dynamic graphs, in parallel, following "Parallel Personalized PageRank
// on Dynamic Graphs" (Guo, Li, Sha, Tan — PVLDB 11(1), 2017).
//
// The central type is the Tracker: it owns a per-source estimate/residual
// state over a dynamic directed graph and keeps the estimate within ε of the
// exact value while edges are inserted and deleted in batches. Internally it
// runs the paper's local update scheme — invariant restoration per update
// followed by a local push — with a choice of engines:
//
//   - the sequential push of the prior state of the art (Algorithm 2),
//   - the parallel push (Algorithm 3),
//   - the optimized parallel push with eager propagation and local duplicate
//     detection (Algorithm 4, the paper's contribution),
//   - a vertex-centric (Ligra-style) formulation, provided as a baseline,
//   - a deterministic parallel push (EngineDeterministic): the frontier is
//     partitioned into fixed stripes with per-stripe delta buffers merged by
//     an ordered reduction, so the resulting vectors are bit-identical at
//     every Options.Parallelism — replaying a batch log reproduces snapshots
//     exactly (see internal/parallel).
//
// The value tracked for source s is the contribution PPR: Estimate(v)
// approximates the probability that a random walk started at v, terminating
// with probability Alpha at every step, stops at s. Equivalently it is
// π_v(s), the personalized PageRank of s from source v, so ranking vertices
// by Estimate answers "who points at s, directly or indirectly, the most".
//
// A minimal session:
//
//	g := dynppr.NewGraph(0)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//	tr, err := dynppr.NewTracker(g, 3, dynppr.DefaultOptions())
//	...
//	tr.ApplyBatch(dynppr.Batch{
//		{U: 4, V: 3, Op: dynppr.Insert},
//		{U: 1, V: 2, Op: dynppr.Delete},
//	})
//	fmt.Println(tr.Estimate(4))
//
// Tracker and TrackerSet are single-goroutine types. To serve queries from
// many goroutines while an update stream is applied, use Service: it shards
// multiple sources across a worker pool, serializes writes through one
// pipeline, and answers reads lock-free from converged snapshots.
//
// To serve a Service over the network, see internal/httpapi (HTTP/JSON
// handler, server and client; every read response carries the SnapshotInfo
// of the converged snapshot it came from) together with cmd/dppr-httpd (the
// daemon) and cmd/dppr-loadgen (a closed-loop load generator that doubles as
// a serving-contract checker). The README's "Serving over the network"
// section documents the endpoints and JSON shapes.
package dynppr

import (
	"fmt"
	"time"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/metrics"
	"dynppr/internal/parallel"
	"dynppr/internal/power"
	"dynppr/internal/push"
	"dynppr/internal/stream"
	"dynppr/internal/vc"
)

// Re-exported graph and stream types, so users of the library construct
// inputs without reaching into internal packages.
type (
	// VertexID identifies a vertex; ids are dense non-negative integers.
	VertexID = graph.VertexID
	// Edge is a directed edge U -> V.
	Edge = graph.Edge
	// Graph is a dynamic directed graph supporting edge insertion/deletion.
	Graph = graph.Graph
	// Update is a single edge insertion or deletion.
	Update = stream.Update
	// Batch is the set of updates arriving at one time step.
	Batch = stream.Batch
	// Op is the update type (Insert or Delete).
	Op = stream.Op
	// Variant selects the parallel-push optimizations (see VariantOpt etc.).
	Variant = push.Variant
	// Counters reports the work performed by the engine (pushes, atomic
	// operations, frontier sizes, ...).
	Counters = metrics.Counters
)

// Update operation kinds.
const (
	// Insert adds the edge U -> V.
	Insert = stream.Insert
	// Delete removes the edge U -> V.
	Delete = stream.Delete
)

// Parallel-push optimization variants (Table 3 of the paper).
var (
	// VariantOpt enables eager propagation and local duplicate detection
	// (Algorithm 4); this is the default and the paper's contribution.
	VariantOpt = push.VariantOpt
	// VariantEager enables only eager propagation.
	VariantEager = push.VariantEager
	// VariantDupDetect enables only local duplicate detection.
	VariantDupDetect = push.VariantDupDetect
	// VariantVanilla disables both optimizations (Algorithm 3).
	VariantVanilla = push.VariantVanilla
)

// NewGraph returns an empty dynamic graph pre-sized for n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// GraphFromEdges builds a graph from an edge list, ignoring duplicates.
func GraphFromEdges(edges []Edge) *Graph { return graph.FromEdges(edges) }

// EngineKind selects the push engine a Tracker uses.
type EngineKind int

const (
	// EngineParallel is the paper's parallel local push (default: the Opt
	// variant running on all available cores).
	EngineParallel EngineKind = iota
	// EngineSequential is the sequential local push baseline.
	EngineSequential
	// EngineVertexCentric is the Ligra-style vertex-centric baseline.
	EngineVertexCentric
	// EngineDeterministic is the deterministic parallel push of
	// internal/parallel: per-stripe delta buffers merged by an ordered
	// reduction make the estimate and residual vectors bit-identical for
	// every Options.Parallelism, with an adaptive cutover that runs small
	// frontiers inline. Use it when reproducibility matters (replayable
	// serving snapshots, differential testing) or when the atomic-add
	// engines' scheduling noise is unwanted.
	EngineDeterministic
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineParallel:
		return "parallel"
	case EngineSequential:
		return "sequential"
	case EngineVertexCentric:
		return "vertex-centric"
	case EngineDeterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("engine(%d)", int(k))
	}
}

// ParseEngineKind parses the -engine flag values shared by the daemons:
// "parallel", "sequential", "vertex-centric", "deterministic".
func ParseEngineKind(name string) (EngineKind, error) {
	switch name {
	case "parallel":
		return EngineParallel, nil
	case "sequential":
		return EngineSequential, nil
	case "vertex-centric":
		return EngineVertexCentric, nil
	case "deterministic":
		return EngineDeterministic, nil
	default:
		return 0, fmt.Errorf("dynppr: unknown engine %q (want parallel, sequential, vertex-centric or deterministic)", name)
	}
}

// UpdateMode controls how a Tracker processes a batch of updates.
type UpdateMode int

const (
	// BatchMode restores the invariant for every update of the batch and then
	// runs one push to convergence — the paper's batch processing method.
	BatchMode UpdateMode = iota
	// SingleUpdateMode restores and pushes after every individual update —
	// the behaviour of the prior state of the art (CPU-Base), kept for
	// comparison.
	SingleUpdateMode
)

// String names the update mode.
func (m UpdateMode) String() string {
	if m == SingleUpdateMode {
		return "single"
	}
	return "batch"
}

// Options configure a Tracker.
type Options struct {
	// Alpha is the teleport/termination probability. Default 0.15.
	Alpha float64
	// Epsilon is the approximation threshold: estimates stay within Epsilon
	// of the exact value. Default 1e-6.
	Epsilon float64
	// Engine selects the push implementation. Default EngineParallel.
	Engine EngineKind
	// Variant selects the parallel-push optimizations (ignored by the other
	// engines). Default VariantOpt.
	Variant Variant
	// Workers is the degree of parallelism for the parallel and
	// vertex-centric engines; <= 0 selects GOMAXPROCS.
	Workers int
	// Parallelism is the degree of parallelism for EngineDeterministic;
	// <= 0 (the default, "auto") selects GOMAXPROCS. Unlike Workers it never
	// influences results: the deterministic engine produces bit-identical
	// vectors at every Parallelism.
	Parallelism int
	// Mode selects batch versus per-update processing. Default BatchMode.
	Mode UpdateMode
}

// DefaultOptions returns the paper's defaults: α = 0.15, ε = 1e-6, the fully
// optimized parallel engine in batch mode using every available core.
func DefaultOptions() Options {
	return Options{
		Alpha:   0.15,
		Epsilon: 1e-6,
		Engine:  EngineParallel,
		Variant: VariantOpt,
		Workers: 0,
		Mode:    BatchMode,
	}
}

// Validate reports option errors.
func (o Options) Validate() error {
	return push.Config{Alpha: o.Alpha, Epsilon: o.Epsilon}.Validate()
}

func (o Options) buildEngine() (push.Engine, error) {
	switch o.Engine {
	case EngineParallel:
		return push.NewParallel(o.Variant, o.Workers), nil
	case EngineSequential:
		return push.NewSequential(), nil
	case EngineVertexCentric:
		workers := o.Workers
		if workers <= 0 {
			workers = fp.DefaultWorkers()
		}
		return vc.NewPPREngine(workers), nil
	case EngineDeterministic:
		return parallel.NewPushEngine(o.Parallelism), nil
	default:
		return nil, fmt.Errorf("dynppr: unknown engine kind %v", o.Engine)
	}
}

// BatchResult reports what one ApplyBatch call did.
type BatchResult struct {
	// Applied is the number of updates that changed the graph (duplicates of
	// existing edges and deletions of missing edges are skipped).
	Applied int
	// Skipped is the number of no-op updates.
	Skipped int
	// Latency is the wall-clock time of the whole call (restoration + push).
	Latency time.Duration
	// Pushes is the number of push operations the engine performed for this
	// batch.
	Pushes int64
}

// Tracker maintains an ε-approximate PPR vector for one source vertex over a
// dynamic graph. A Tracker by itself is not safe for concurrent use — apply
// batches and issue queries from one goroutine (the engine parallelizes
// internally). To serve queries concurrently with a live update stream, wrap
// the same state in a Service, which decouples lock-free snapshot reads from
// a serialized write pipeline.
type Tracker struct {
	st     *push.State
	engine push.Engine
	opts   Options
}

// NewTracker builds a tracker for the given source over g and brings it to
// convergence on the current graph. The graph is retained and mutated by
// ApplyBatch; it must not be mutated elsewhere while the tracker is in use
// (use a TrackerSet to share one graph between several sources).
func NewTracker(g *Graph, source VertexID, opts Options) (*Tracker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	engine, err := opts.buildEngine()
	if err != nil {
		return nil, err
	}
	st, err := push.NewState(g, source, push.Config{Alpha: opts.Alpha, Epsilon: opts.Epsilon})
	if err != nil {
		return nil, err
	}
	engine.Run(st, []graph.VertexID{source})
	return &Tracker{st: st, engine: engine, opts: opts}, nil
}

// Source returns the tracked source vertex.
func (t *Tracker) Source() VertexID { return t.st.Source() }

// Graph returns the tracked graph.
func (t *Tracker) Graph() *Graph { return t.st.Graph() }

// Options returns the options the tracker was built with.
func (t *Tracker) Options() Options { return t.opts }

// EngineName returns the name of the engine in use (for experiment output).
func (t *Tracker) EngineName() string { return t.engine.Name() }

// Estimate returns the current PPR estimate of v; it is within Epsilon of the
// exact value for the current graph.
func (t *Tracker) Estimate(v VertexID) float64 { return t.st.Estimate(v) }

// Residual returns the current residual of v (the bound on its estimation
// bias).
func (t *Tracker) Residual(v VertexID) float64 { return t.st.Residual(v) }

// Estimates returns a copy of the full estimate vector.
func (t *Tracker) Estimates() []float64 { return t.st.Estimates() }

// Converged reports whether every residual is within Epsilon (always true
// after ApplyBatch returns).
func (t *Tracker) Converged() bool { return t.st.Converged() }

// Counters returns a snapshot of the work counters accumulated so far.
func (t *Tracker) Counters() Counters { return t.st.Counters.Snapshot() }

// ApplyUpdate applies a single edge update and restores the approximation.
func (t *Tracker) ApplyUpdate(u Update) BatchResult {
	return t.ApplyBatch(Batch{u})
}

// ApplyBatch applies a batch of edge updates and restores the approximation
// guarantee before returning.
func (t *Tracker) ApplyBatch(b Batch) BatchResult {
	start := time.Now()
	pushesBefore := t.st.Counters.Snapshot().Pushes
	applied := 0
	switch t.opts.Mode {
	case SingleUpdateMode:
		for _, u := range b {
			if t.applyOne(u) {
				applied++
				t.engine.Run(t.st, []graph.VertexID{u.U})
			}
		}
	default:
		touched := make([]graph.VertexID, 0, len(b))
		for _, u := range b {
			if t.applyOne(u) {
				applied++
				touched = append(touched, u.U)
			}
		}
		t.engine.Run(t.st, touched)
	}
	// Between batches is a quiescent point: fold grown delta segments back
	// into the CSR base so the next batch's pushes scan flat arrays.
	t.st.Graph().MaybeCompact()
	return BatchResult{
		Applied: applied,
		Skipped: len(b) - applied,
		Latency: time.Since(start),
		Pushes:  t.st.Counters.Snapshot().Pushes - pushesBefore,
	}
}

func (t *Tracker) applyOne(u Update) bool {
	switch u.Op {
	case Insert:
		changed, err := t.st.ApplyInsert(u.U, u.V)
		return err == nil && changed
	case Delete:
		changed, err := t.st.ApplyDelete(u.U, u.V)
		return err == nil && changed
	default:
		return false
	}
}

// VertexScore pairs a vertex with its PPR estimate.
type VertexScore = push.VertexScore

// TopK returns the k vertices with the largest PPR estimates, descending
// (ties broken by ascending vertex id). The source itself is included.
// The selection reads the live estimate vector directly — no O(n) copy.
func (t *Tracker) TopK(k int) []VertexScore {
	return t.st.AppendTopK(nil, k)
}

// ExactError computes the exact contribution PPR vector of the current graph
// by dense fixed-point iteration and returns the tracker's maximum absolute
// estimation error. It is expensive (O(iterations × edges)) and intended for
// validation and experiments, not for the hot path.
func (t *Tracker) ExactError() (float64, error) {
	oracle, err := power.ReverseGraph(t.st.Graph(), t.st.Source(), power.Options{
		Alpha:         t.opts.Alpha,
		Tolerance:     1e-13,
		MaxIterations: 20_000,
	})
	if err != nil {
		return 0, err
	}
	return power.MaxAbsDiff(t.st.Estimates(), oracle), nil
}
