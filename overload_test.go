package dynppr_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dynppr"
)

// overloadBatch builds a batch of n pseudo-random inserts that keeps the
// push pipeline busy for a macroscopic amount of time.
func overloadBatch(n, vertices int, seed int64) dynppr.Batch {
	b := make(dynppr.Batch, n)
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := range b {
		x = x*2862933555777941757 + 3037000493
		u := dynppr.VertexID(x % uint64(vertices))
		x = x*2862933555777941757 + 3037000493
		v := dynppr.VertexID(x % uint64(vertices))
		b[i] = dynppr.Update{U: u, V: v, Op: dynppr.Insert}
	}
	return b
}

// TestServiceBoundedAdmission exercises the overload surface: with a
// depth-1 queue saturated by slow batches, TryApplyBatch and an expired
// ApplyBatchCtx must shed with ErrOverloaded (and count the sheds), while
// admission succeeds again once the queue drains — even with an
// already-cancelled context, which only bounds the wait for a slot.
func TestServiceBoundedAdmission(t *testing.T) {
	edges := serviceTestEdges(t, dynppr.ModelRMAT, 8000, 48000, 5)
	g := dynppr.GraphFromEdges(edges)
	sources := g.TopDegreeVertices(2)
	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-6
	so.Options.Workers = 2
	so.PoolWorkers = 2
	so.QueueDepth = 1
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if qs := svc.Queue(); qs.Cap != 1 || qs.Depth != 0 || qs.Shed != 0 {
		t.Fatalf("initial queue stats: %+v", qs)
	}

	// Saturate: one heavy batch runs on the pipeline while a second fills
	// the single queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if _, err := svc.ApplyBatch(overloadBatch(8000, 8000, seed)); err != nil {
				t.Errorf("blocking ApplyBatch under load: %v", err)
			}
		}(int64(i + 1))
	}

	// The saturation window is timing-dependent, so retry the shed probe a
	// few times: each attempt waits for the queue slot to fill and then
	// expects the non-blocking admission to bounce.
	shedSeen := false
	deadline := time.Now().Add(10 * time.Second)
	for !shedSeen && time.Now().Before(deadline) {
		if svc.Queue().Depth < 1 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		_, err := svc.TryApplyBatch(overloadBatch(4, 8000, 99))
		if err == nil {
			continue // the queue drained between the poll and the try
		}
		if !errors.Is(err, dynppr.ErrOverloaded) {
			t.Fatalf("TryApplyBatch on full queue: %v", err)
		}
		shedSeen = true

		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err = svc.ApplyBatchCtx(ctx, overloadBatch(4, 8000, 98))
		cancel()
		if err != nil && !errors.Is(err, dynppr.ErrOverloaded) {
			t.Fatalf("ApplyBatchCtx on full queue: %v", err)
		}
	}
	wg.Wait()
	if !shedSeen {
		t.Fatal("never observed a shed on a saturated depth-1 queue")
	}
	if qs := svc.Queue(); qs.Shed < 1 {
		t.Fatalf("Queue().Shed = %d, want >= 1", qs.Shed)
	}
	if st := svc.Stats(); st.Shed < 1 || st.QueueCap != 1 {
		t.Fatalf("Stats shed=%d cap=%d", st.Shed, st.QueueCap)
	}

	// A done context still admits instantly when a slot is free: the
	// deadline bounds the wait, not the work.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ApplyBatchCtx(cancelled, overloadBatch(4, 8000, 97)); err != nil {
		t.Fatalf("ApplyBatchCtx with free queue and done context: %v", err)
	}
	if _, err := svc.TryApplyBatch(overloadBatch(4, 8000, 96)); err != nil {
		t.Fatalf("TryApplyBatch with free queue: %v", err)
	}

	// The context-aware source mutators share the admission path.
	ctx, cancelAdd := context.WithTimeout(context.Background(), time.Second)
	defer cancelAdd()
	if err := svc.AddSourceCtx(ctx, 7); err != nil {
		t.Fatalf("AddSourceCtx: %v", err)
	}
	if err := svc.RemoveSourceCtx(ctx, 7); err != nil {
		t.Fatalf("RemoveSourceCtx: %v", err)
	}

	// Closed beats overloaded.
	svc.Close()
	if _, err := svc.TryApplyBatch(overloadBatch(4, 8000, 95)); !errors.Is(err, dynppr.ErrServiceClosed) {
		t.Fatalf("TryApplyBatch after Close: %v", err)
	}
}
