package dynppr_test

// Fuzz companion to the chaos differential suite: arbitrary fault scripts —
// decoded from the fuzz input into up to four faultfs rules — are armed over
// a WAL append stream with a mid-stream checkpoint, and the durability
// contract is checked against the clean filesystem afterwards:
//
//   - the WAL stays readable, every acknowledged append survives in order,
//     and at most the single in-flight record (acked-but-rolled-back-fault)
//     can trail it;
//   - the checkpoint file always decodes, at either the old or the new LSN —
//     a torn temp file never clobbers the last good checkpoint;
//   - a checkpoint write that reported success is really the new one.
//
// Lying short writes (ModeSilentShort) are scoped to *.tmp paths: only the
// read-back-verified temp-then-rename sites can detect a kernel that
// acknowledges bytes it never wrote, so an unscoped lying write to the live
// WAL would be an (accepted) undetectable-by-design data loss, not a bug.

import (
	"path/filepath"
	"testing"

	"dynppr/internal/ckpt"
	"dynppr/internal/faultfs"
	"dynppr/internal/graph"
	"dynppr/internal/stream"
	"dynppr/internal/wal"
)

// decodeFaultScript parses four bytes per rule: operation kind, 1-based
// operation index, failure mode, and the torn-prefix length.
func decodeFaultScript(script []byte) []faultfs.Rule {
	var rules []faultfs.Rule
	for len(script) >= 4 && len(rules) < 4 {
		r := faultfs.Rule{
			Op:      faultfs.Op(script[0] % 7),
			Nth:     int(script[1]%24) + 1,
			Mode:    faultfs.Mode(script[2] % 3),
			Partial: int(script[3] % 16),
		}
		if r.Mode == faultfs.ModeSilentShort {
			r.Path = ".tmp"
		}
		rules = append(rules, r)
		script = script[4:]
	}
	return rules
}

func fuzzBatch(i int) stream.Batch {
	b := make(stream.Batch, i%3+1)
	for j := range b {
		b[j] = stream.Update{U: graph.VertexID(j), V: graph.VertexID(j + i + 1), Op: stream.Insert}
	}
	return b
}

func FuzzFaultScriptRoundTrip(f *testing.F) {
	f.Add([]byte{})                                               // no faults: clean round trip
	f.Add([]byte{2, 2, 0, 0})                                     // fail an early write outright
	f.Add([]byte{2, 4, 1, 7})                                     // torn partial append
	f.Add([]byte{2, 0, 2, 10})                                    // lying short write on a temp file
	f.Add([]byte{4, 0, 0, 0})                                     // fail the first rename
	f.Add([]byte{3, 3, 0, 0, 6, 0, 0, 0})                         // fsync fault plus a failed rollback truncate
	f.Add([]byte{0, 5, 1, 3, 0, 9, 0, 0})                         // wildcard faults, torn then outright
	f.Add([]byte{1, 1, 0, 0, 2, 1, 1, 1, 3, 1, 0, 0, 4, 1, 0, 0}) // pile-up at op 1

	f.Fuzz(func(t *testing.T, script []byte) {
		dir := t.TempDir()
		walPath := filepath.Join(dir, "wal.log")
		ckptPath := filepath.Join(dir, "checkpoint")

		// The last good checkpoint predates the fault script.
		const oldLSN = 0
		last := &ckpt.Data{
			LSN: oldLSN, Alpha: 0.2, Epsilon: 1e-3,
			Out: [][]graph.VertexID{{1}, {2}, {0}},
			In:  [][]graph.VertexID{{2}, {0}, {1}},
		}
		if err := ckpt.WriteFileFS(faultfs.OS, ckptPath, last); err != nil {
			t.Fatal(err)
		}

		in := faultfs.NewInjector(faultfs.OS)
		for _, r := range decodeFaultScript(script) {
			in.Add(r)
		}

		l, _, err := wal.OpenOrCreate(walPath, oldLSN, wal.Options{Sync: wal.SyncAlways, FS: in})
		var acked []uint64
		ackedCkpt := false
		var newLSN uint64
		if err == nil {
			// Drive the workload the way a degraded service would: stop
			// mutating at the first storage error.
			for i := 0; i < 8; i++ {
				if i == 4 {
					next := *last
					next.LSN = l.NextLSN()
					// Record the attempted LSN before writing: a fault after
					// the rename (directory fsync) reports failure with the
					// new checkpoint already in place — a legal outcome.
					newLSN = next.LSN
					if err := ckpt.WriteFileFS(in, ckptPath, &next); err != nil {
						break
					}
					ackedCkpt = true
				}
				lsn, err := l.AppendBatch(fuzzBatch(i))
				if err != nil {
					break
				}
				acked = append(acked, lsn)
			}
			l.Close()
		}

		// Verification runs against the clean filesystem: what a process
		// restarted after the fault would actually find.
		if err == nil {
			base, recs, _, serr := wal.ScanFile(walPath)
			if serr != nil {
				t.Fatalf("WAL with acked records unreadable: %v", serr)
			}
			if base != oldLSN {
				t.Fatalf("WAL base %d, want %d", base, oldLSN)
			}
			if len(recs) < len(acked) || len(recs) > len(acked)+1 {
				t.Fatalf("scan sees %d records, acked %d: acked mutations must survive, and only the one in-flight record may trail them", len(recs), len(acked))
			}
			for i, lsn := range acked {
				if recs[i].LSN != lsn {
					t.Fatalf("record %d has LSN %d, acked %d", i, recs[i].LSN, lsn)
				}
			}
		}

		d, lerr := ckpt.LoadFileFS(faultfs.OS, ckptPath)
		if lerr != nil {
			t.Fatalf("checkpoint undecodable after fault script: %v", lerr)
		}
		switch {
		case ackedCkpt && d.LSN != newLSN:
			t.Fatalf("checkpoint write was acknowledged at LSN %d but disk holds %d", newLSN, d.LSN)
		case !ackedCkpt && d.LSN != oldLSN && d.LSN != newLSN:
			t.Fatalf("checkpoint LSN %d is neither the old (%d) nor the attempted (%d) snapshot", d.LSN, oldLSN, newLSN)
		}
	})
}
