// Sliding-window stream processing: replay a timestamped edge stream through
// a fixed-size window (the workload of the paper's evaluation), maintain PPR
// for a hub vertex with both the sequential and the parallel engine, and
// compare their per-slide latency and their accuracy against the exact
// answer.
//
// Run with:
//
//	go run ./examples/streamwindow
package main

import (
	"fmt"
	"log"
	"time"

	"dynppr"
)

func main() {
	// A power-law graph whose edges arrive in random order.
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "stream", Model: dynppr.ModelRMAT,
		Vertices: 5000, Edges: 80000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	const (
		batchSize = 200
		slides    = 15
	)

	type run struct {
		name    string
		engine  dynppr.EngineKind
		total   time.Duration
		tracker *dynppr.Tracker
	}
	runs := []*run{
		{name: "sequential push", engine: dynppr.EngineSequential},
		{name: "parallel push   ", engine: dynppr.EngineParallel},
	}

	for _, r := range runs {
		// Each engine replays exactly the same stream.
		s := dynppr.NewStream(edges, 1)
		window, initial := dynppr.NewSlidingWindow(s, 0.1)
		g := dynppr.GraphFromEdges(initial)
		source := g.TopDegreeVertices(1)[0]

		opts := dynppr.DefaultOptions()
		opts.Engine = r.engine
		opts.Epsilon = 1e-7
		tracker, err := dynppr.NewTracker(g, source, opts)
		if err != nil {
			log.Fatal(err)
		}
		r.tracker = tracker

		for i := 0; i < slides; i++ {
			batch := window.Slide(batchSize)
			if batch == nil {
				break
			}
			res := tracker.ApplyBatch(batch)
			r.total += res.Latency
		}
	}

	fmt.Printf("replayed %d slides of %d insertions + %d deletions each\n\n", slides, batchSize, batchSize)
	for _, r := range runs {
		maxErr, err := r.tracker.ExactError()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  total push time %-12v  mean/slide %-12v  max error %.2g\n",
			r.name, r.total.Round(time.Microsecond),
			(r.total / slides).Round(time.Microsecond), maxErr)
	}
	if runs[1].total > 0 {
		fmt.Printf("\nparallel speedup over sequential: %.2fx\n",
			float64(runs[0].total)/float64(runs[1].total))
	}
}
