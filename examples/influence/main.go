// Influence tracking with forward PPR: while the Tracker ranks "who reaches
// the target", the ForwardTracker answers the opposite question — "where does
// attention starting at this account end up". This example maintains both
// directions for the same account over a shared dynamic graph (via
// TrackerSet for the reverse side) and keeps them fresh as the graph churns:
// the forward side is the account's influence footprint, the reverse side its
// audience sources.
//
// Run with:
//
//	go run ./examples/influence
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynppr"
)

func main() {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "influence", Model: dynppr.ModelRMAT,
		Vertices: 2000, Edges: 25000, Seed: 19,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two graphs with identical content: the forward tracker and the reverse
	// tracker set each own their copy (a ForwardTracker and a TrackerSet must
	// not share one mutable graph, since both apply the updates themselves).
	gForward := dynppr.GraphFromEdges(edges)
	gReverse := gForward.Clone()

	account := gForward.TopDegreeVertices(3)[2] // a well-connected, non-top account

	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-6

	forward, err := dynppr.NewForwardTracker(gForward, account, opts)
	if err != nil {
		log.Fatal(err)
	}
	reverse, err := dynppr.NewTrackerSet(gReverse, []dynppr.VertexID{account}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("account %d on a graph with %d vertices / %d edges\n\n",
		account, gForward.NumVertices(), gForward.NumEdges())
	printFootprint(forward, account)

	// Churn: new follows appear around the account, old ones disappear.
	rng := rand.New(rand.NewSource(5))
	for round := 1; round <= 5; round++ {
		batch := make(dynppr.Batch, 0, 120)
		for i := 0; i < 100; i++ {
			u := dynppr.VertexID(rng.Intn(gForward.NumVertices()))
			v := dynppr.VertexID(rng.Intn(gForward.NumVertices()))
			if u != v {
				batch = append(batch, dynppr.Update{U: u, V: v, Op: dynppr.Insert})
			}
		}
		existing := gForward.Edges()
		for i := 0; i < 20; i++ {
			e := existing[rng.Intn(len(existing))]
			batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
		}
		fres := forward.ApplyBatch(batch)
		rres := reverse.ApplyBatch(batch)
		fmt.Printf("round %d: forward refresh %v, reverse refresh %v (%d effective updates)\n",
			round, fres.Latency, rres.Latency, fres.Applied)
	}

	fmt.Println()
	printFootprint(forward, account)

	// The audience side from the tracker set.
	fmt.Println("\ntop audience sources (reverse PPR towards the account):")
	type scored struct {
		v dynppr.VertexID
		s float64
	}
	var best scored
	for v := 0; v < gReverse.NumVertices(); v++ {
		id := dynppr.VertexID(v)
		if id == account {
			continue
		}
		score, err := reverse.Estimate(account, id)
		if err != nil {
			log.Fatal(err)
		}
		if score > best.s {
			best = scored{v: id, s: score}
		}
	}
	fmt.Printf("  strongest source: account %d with score %.5f\n", best.v, best.s)
}

func printFootprint(forward *dynppr.ForwardTracker, account dynppr.VertexID) {
	fmt.Println("influence footprint (forward PPR — where walks from the account stop):")
	shown := 0
	for _, vs := range forward.TopK(10) {
		if vs.Vertex == account {
			continue
		}
		fmt.Printf("  account %-6d weight %.5f\n", vs.Vertex, vs.Score)
		if shown++; shown == 5 {
			break
		}
	}
}
