// Concurrent serving: the scenario the Service exists for. A sliding-window
// edge stream mutates the graph through the write pipeline while a crowd of
// query goroutines reads PPR estimates and top-k rankings the whole time —
// and partway through, a new source is added live without pausing either
// side.
//
// Every read is served lock-free from the source's latest converged
// snapshot, so the readers never block on a batch and never see a mid-push
// vector.
//
// Run with:
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynppr"
)

func main() {
	// A power-law graph whose edges arrive in random order.
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "serve", Model: dynppr.ModelRMAT,
		Vertices: 4000, Edges: 60000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := dynppr.NewStream(edges, 1)
	window, initial := dynppr.NewSlidingWindow(stream, 0.1)
	g := dynppr.GraphFromEdges(initial)
	sources := g.TopDegreeVertices(3)
	// NewService takes ownership of g: capture everything we want from the
	// graph — including the source we will live-add later — before handing
	// it over.
	liveAddSource := g.TopDegreeVertices(10)[9]
	vertexCount := g.NumVertices()

	so := dynppr.DefaultServiceOptions()
	so.Options.Epsilon = 1e-5
	svc, err := dynppr.NewService(g, sources, so)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("serving %d sources over %d vertices (window %d edges)\n\n",
		len(sources), vertexCount, window.Size())

	// The read side: a crowd of goroutines issuing queries non-stop.
	const readers = 8
	stop := make(chan struct{})
	var queries atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				all := svc.Sources() // sources can change live
				src := all[rng.Intn(len(all))]
				if rng.Intn(2) == 0 {
					if _, err := svc.Estimate(src, dynppr.VertexID(rng.Intn(4000))); err != nil {
						continue // source removed between Sources() and the read
					}
				} else {
					if _, err := svc.TopK(src, 10); err != nil {
						continue
					}
				}
				queries.Add(1)
			}
		}(r)
	}

	// The write side: stream the sliding window through the pipeline.
	const (
		batchSize = 200
		slides    = 12
	)
	start := time.Now()
	for i := 0; i < slides; i++ {
		if i == slides/2 {
			// Halfway through, start serving a brand-new source — readers
			// keep going; the source appears once converged.
			if err := svc.AddSource(liveAddSource); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  >> live-added source %d (now serving %d sources)\n",
				liveAddSource, len(svc.Sources()))
		}
		batch := window.Slide(batchSize)
		if len(batch) == 0 {
			break
		}
		res, err := svc.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slide %2d: %4d updates in %-10v (%d queries answered so far)\n",
			i+1, res.Applied, res.Latency.Round(time.Microsecond), queries.Load())
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	stats := svc.Stats()
	fmt.Printf("\n%d batches (%d updates) streamed while %d queries were served — %.0f queries/sec\n",
		stats.Batches, stats.UpdatesApplied, queries.Load(),
		float64(queries.Load())/elapsed.Seconds())
	fmt.Println("\nfinal serving state:")
	for _, ss := range stats.Sources {
		info, err := svc.Info(ss.Source)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  source %-6d epoch %-3d residual %.1e converged=%t\n",
			ss.Source, info.Epoch, info.MaxResidual, info.Converged())
	}

	// Each snapshot is a coherent converged vector, so rankings read
	// mid-stream are as trustworthy as offline ones.
	top, err := svc.TopK(sources[0], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-5 vertices by PPR towards %d:\n", sources[0])
	for _, vs := range top {
		fmt.Printf("  vertex %-6d score %.6f\n", vs.Vertex, vs.Score)
	}
}
