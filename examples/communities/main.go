// Local community detection on a dynamic graph: PPR towards a seed vertex
// followed by a sweep over the normalized scores is the classic
// PageRank-Nibble recipe for finding the seed's community. This example
// plants two communities, tracks PPR towards a seed in the first one, shows
// the sweep recovering that community, then streams in a batch of
// cross-community edges and shows how the membership shifts — all without
// recomputing from scratch.
//
// Run with:
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dynppr"
)

const (
	communitySize = 60
	intraEdges    = 8 // outgoing intra-community edges per vertex
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := dynppr.NewGraph(2 * communitySize)

	// Two dense communities: A = [0, communitySize), B = [communitySize, 2*communitySize),
	// with only a couple of bridges between them.
	addCommunity(g, rng, 0, communitySize)
	addCommunity(g, rng, communitySize, 2*communitySize)
	mustAdd(g, 0, communitySize)   // bridge A -> B
	mustAdd(g, communitySize, 0)   // bridge B -> A
	mustAdd(g, 5, communitySize+5) // second bridge

	seed := dynppr.VertexID(3) // a vertex inside community A
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-8
	tracker, err := dynppr.NewTracker(g, seed, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("seed vertex %d lives in community A (vertices 0..%d)\n\n", seed, communitySize-1)
	before := sweepCommunity(tracker, communitySize)
	report("before churn", before)

	// Cross-community churn: community B starts linking heavily towards the
	// seed's neighborhood, pulling its members into the seed's community.
	batch := make(dynppr.Batch, 0, 300)
	for i := 0; i < 300; i++ {
		u := dynppr.VertexID(communitySize + rng.Intn(communitySize))
		v := dynppr.VertexID(rng.Intn(10)) // near the seed
		batch = append(batch, dynppr.Update{U: u, V: v, Op: dynppr.Insert})
	}
	res := tracker.ApplyBatch(batch)
	fmt.Printf("\napplied %d cross-community edges in %v\n\n", res.Applied, res.Latency)

	after := sweepCommunity(tracker, communitySize)
	report("after churn", after)
}

// addCommunity wires lo..hi-1 into a dense random subgraph.
func addCommunity(g *dynppr.Graph, rng *rand.Rand, lo, hi int) {
	for u := lo; u < hi; u++ {
		for k := 0; k < intraEdges; k++ {
			v := lo + rng.Intn(hi-lo)
			if v == u {
				continue
			}
			_, _ = g.AddEdge(dynppr.VertexID(u), dynppr.VertexID(v))
		}
	}
}

func mustAdd(g *dynppr.Graph, u, v dynppr.VertexID) {
	if _, err := g.AddEdge(u, v); err != nil {
		log.Fatal(err)
	}
}

// sweepCommunity ranks vertices by degree-normalized PPR score and returns
// the members of the best prefix ("sweep cut" simplified to a fixed-size
// prefix for the demonstration).
func sweepCommunity(tracker *dynppr.Tracker, size int) []dynppr.VertexID {
	g := tracker.Graph()
	type scored struct {
		v     dynppr.VertexID
		score float64
	}
	var all []scored
	for v := 0; v < g.NumVertices(); v++ {
		id := dynppr.VertexID(v)
		deg := g.OutDegree(id)
		if deg == 0 {
			continue
		}
		s := tracker.Estimate(id) / float64(deg)
		if s > 0 {
			all = append(all, scored{v: id, score: s})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	if len(all) > size {
		all = all[:size]
	}
	members := make([]dynppr.VertexID, len(all))
	for i, s := range all {
		members[i] = s.v
	}
	return members
}

func report(label string, members []dynppr.VertexID) {
	inA, inB := 0, 0
	for _, v := range members {
		if int(v) < communitySize {
			inA++
		} else {
			inB++
		}
	}
	fmt.Printf("%s: sweep community has %d members — %d from community A, %d from community B\n",
		label, len(members), inA, inB)
}
