// Quickstart: build a small graph, track PPR towards one vertex, apply a
// batch of edge insertions and deletions, and read the updated ranking.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dynppr"
)

func main() {
	// A toy citation-style graph: vertex 0 is a survey everyone cites.
	g := dynppr.NewGraph(0)
	for _, e := range []dynppr.Edge{
		{U: 1, V: 0}, {U: 2, V: 0}, {U: 3, V: 0},
		{U: 2, V: 1}, {U: 3, V: 2}, {U: 4, V: 3},
	} {
		if _, err := g.AddEdge(e.U, e.V); err != nil {
			log.Fatal(err)
		}
	}

	// Track the PPR contribution towards vertex 0: Estimate(v) is the
	// probability a random reader starting at v ends up at 0.
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-8
	tracker, err := dynppr.NewTracker(g, 0, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("before the update batch:")
	printRanking(tracker)

	// A batch arrives: vertex 5 joins and cites 0 and 3; the edge 3 -> 0 is
	// retracted.
	result := tracker.ApplyBatch(dynppr.Batch{
		{U: 5, V: 0, Op: dynppr.Insert},
		{U: 5, V: 3, Op: dynppr.Insert},
		{U: 3, V: 0, Op: dynppr.Delete},
	})
	fmt.Printf("\napplied %d updates in %v (%d push operations)\n\n",
		result.Applied, result.Latency, result.Pushes)

	fmt.Println("after the update batch:")
	printRanking(tracker)

	// The guarantee: every estimate is within epsilon of the exact value.
	maxErr, err := tracker.ExactError()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst-case estimation error: %.2g (epsilon = %.0e)\n", maxErr, opts.Epsilon)
}

func printRanking(tracker *dynppr.Tracker) {
	for _, vs := range tracker.TopK(6) {
		fmt.Printf("  vertex %d: %.4f\n", vs.Vertex, vs.Score)
	}
}
