// Social recommendations ("who to follow"): maintain PPR towards an account
// of interest on an evolving follower graph and surface the accounts whose
// audiences are most likely to discover it, keeping the ranking fresh as
// follow/unfollow events stream in.
//
// This mirrors the user-recommendation motivation of the paper's
// introduction: PPR towards account T ranks accounts v by how likely a random
// browse starting from v reaches T — exactly the signal "people who follow v
// also end up at T".
//
// Run with:
//
//	go run ./examples/socialrecs
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynppr"
)

func main() {
	// Generate a power-law follower graph standing in for a social network.
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Name: "social", Model: dynppr.ModelBarabasiAlbert,
		Vertices: 3000, Edges: 40000, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := dynppr.GraphFromEdges(edges)

	// The account we want to grow: the best-connected vertex.
	target := g.TopDegreeVertices(1)[0]

	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-7
	tracker, err := dynppr.NewTracker(g, target, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracking account %d on a graph with %d accounts and %d follows\n\n",
		target, g.NumVertices(), g.NumEdges())

	fmt.Println("initial influencer ranking (accounts whose audience reaches the target):")
	printTop(tracker, target)

	// Simulate 10 rounds of follow/unfollow churn and keep the ranking fresh.
	rng := rand.New(rand.NewSource(7))
	for round := 1; round <= 10; round++ {
		batch := make(dynppr.Batch, 0, 200)
		// New follows: random accounts start following popular ones.
		popular := g.TopDegreeVertices(50)
		for i := 0; i < 150; i++ {
			u := dynppr.VertexID(rng.Intn(g.NumVertices()))
			v := popular[rng.Intn(len(popular))]
			batch = append(batch, dynppr.Update{U: u, V: v, Op: dynppr.Insert})
		}
		// Unfollows: drop a few existing edges.
		existing := g.Edges()
		for i := 0; i < 50 && len(existing) > 0; i++ {
			e := existing[rng.Intn(len(existing))]
			batch = append(batch, dynppr.Update{U: e.U, V: e.V, Op: dynppr.Delete})
		}
		res := tracker.ApplyBatch(batch)
		fmt.Printf("round %2d: %3d effective updates, refreshed in %v\n",
			round, res.Applied, res.Latency)
	}

	fmt.Println("\nranking after ten rounds of churn:")
	printTop(tracker, target)
}

func printTop(tracker *dynppr.Tracker, target dynppr.VertexID) {
	shown := 0
	for _, vs := range tracker.TopK(12) {
		if vs.Vertex == target {
			continue // skip the account itself
		}
		fmt.Printf("  account %-6d reach-score %.5f\n", vs.Vertex, vs.Score)
		shown++
		if shown == 8 {
			break
		}
	}
}
