module dynppr

go 1.24
