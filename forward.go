package dynppr

import (
	"time"

	"dynppr/internal/fwd"
	"dynppr/internal/graph"
)

// ForwardTracker maintains the forward personalized PageRank vector π_s over
// a dynamic graph: Estimate(v) approximates the probability that a random
// walk started at the source — terminating with probability Alpha at each
// step — stops at v. This is the dual of the contribution vector the Tracker
// maintains, and the quantity classical "forward push" algorithms compute on
// static graphs.
//
// Restoring the forward invariant after an edge update (u, v) touches every
// out-neighbor of u, so per-update maintenance costs O(dout(u)) instead of
// the O(1) of the reverse formulation; prefer Tracker unless the application
// specifically needs π_s. Of the Options, Alpha and Epsilon always apply;
// setting Engine to EngineDeterministic routes the push through the
// deterministic parallel schedule of internal/parallel (Parallelism workers,
// bit-identical at any count) instead of the sequential FIFO push. The other
// engine kinds have no forward implementation and fall back to sequential.
//
// Dangling convention: a walk reaching a vertex with no out-edges terminates
// without attributing its remaining probability anywhere, so estimates sum to
// less than one on graphs with dangling vertices.
type ForwardTracker struct {
	st   *fwd.State
	opts Options
}

// NewForwardTracker builds a forward tracker for the given source over g and
// brings it to convergence on the current graph.
func NewForwardTracker(g *Graph, source VertexID, opts Options) (*ForwardTracker, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	st, err := fwd.NewState(g, source, fwd.Config{Alpha: opts.Alpha, Epsilon: opts.Epsilon})
	if err != nil {
		return nil, err
	}
	t := &ForwardTracker{st: st, opts: opts}
	t.push([]graph.VertexID{source})
	return t, nil
}

// push drains the state with the engine the options selected.
func (t *ForwardTracker) push(candidates []graph.VertexID) {
	if t.opts.Engine == EngineDeterministic {
		t.st.PushParallel(t.opts.Parallelism, candidates)
		return
	}
	t.st.Push(candidates)
}

// Source returns the tracked source vertex.
func (t *ForwardTracker) Source() VertexID { return t.st.Source() }

// Graph returns the tracked graph.
func (t *ForwardTracker) Graph() *Graph { return t.st.Graph() }

// Estimate returns the current estimate of π_s(v).
func (t *ForwardTracker) Estimate(v VertexID) float64 { return t.st.Estimate(v) }

// Residual returns the current residual of v.
func (t *ForwardTracker) Residual(v VertexID) float64 { return t.st.Residual(v) }

// Estimates returns a copy of the full estimate vector.
func (t *ForwardTracker) Estimates() []float64 { return t.st.Estimates() }

// Converged reports whether every residual is within Epsilon.
func (t *ForwardTracker) Converged() bool { return t.st.Converged() }

// Counters returns a snapshot of the work counters accumulated so far.
func (t *ForwardTracker) Counters() Counters { return t.st.Counters.Snapshot() }

// ApplyBatch applies a batch of edge updates and restores convergence.
func (t *ForwardTracker) ApplyBatch(b Batch) BatchResult {
	start := time.Now()
	before := t.st.Counters.Snapshot().Pushes
	applied := 0
	var touched []graph.VertexID
	for _, u := range b {
		switch u.Op {
		case Insert:
			ts, changed, err := t.st.ApplyInsert(u.U, u.V)
			if err == nil && changed {
				applied++
				touched = append(touched, ts...)
			}
		case Delete:
			ts, changed, err := t.st.ApplyDelete(u.U, u.V)
			if err == nil && changed {
				applied++
				touched = append(touched, ts...)
			}
		}
	}
	t.push(touched)
	// Between batches is a quiescent point: fold grown delta segments back
	// into the CSR base so the next batch's pushes scan flat arrays.
	t.st.Graph().MaybeCompact()
	return BatchResult{
		Applied: applied,
		Skipped: len(b) - applied,
		Latency: time.Since(start),
		Pushes:  t.st.Counters.Snapshot().Pushes - before,
	}
}

// TopK returns the k vertices the source's random walks most often stop at,
// in descending order of estimate (ties broken by ascending vertex id). The
// selection reads the live estimate vector directly — no O(n) copy or full
// sort.
func (t *ForwardTracker) TopK(k int) []VertexScore {
	return t.st.AppendTopK(nil, k)
}
