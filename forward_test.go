package dynppr_test

import (
	"math"
	"testing"

	"dynppr"
)

// cycleGraph builds a directed cycle over n vertices (no dangling vertices).
func cycleGraph(n int) *dynppr.Graph {
	g := dynppr.NewGraph(n)
	for i := 0; i < n; i++ {
		if _, err := g.AddEdge(dynppr.VertexID(i), dynppr.VertexID((i+1)%n)); err != nil {
			panic(err)
		}
	}
	return g
}

func TestForwardTrackerErrors(t *testing.T) {
	bad := dynppr.DefaultOptions()
	bad.Epsilon = 0
	if _, err := dynppr.NewForwardTracker(cycleGraph(4), 0, bad); err == nil {
		t.Fatal("invalid options must fail")
	}
	if _, err := dynppr.NewForwardTracker(cycleGraph(4), -1, dynppr.DefaultOptions()); err == nil {
		t.Fatal("negative source must fail")
	}
}

func TestForwardTrackerBasics(t *testing.T) {
	g := cycleGraph(6)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-9
	tr, err := dynppr.NewForwardTracker(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Source() != 0 || tr.Graph() != g {
		t.Fatal("accessors wrong")
	}
	if !tr.Converged() {
		t.Fatal("must converge at construction")
	}
	if tr.Counters().Pushes == 0 {
		t.Fatal("cold start should push")
	}
	// On a cycle, forward PPR decays geometrically with distance from the
	// source along edge direction.
	prev := math.Inf(1)
	for v := 0; v < 6; v++ {
		e := tr.Estimate(dynppr.VertexID(v))
		if e <= 0 || e >= prev {
			t.Fatalf("estimates must decay along the cycle: P[%d]=%v prev=%v", v, e, prev)
		}
		prev = e
	}
	// The source holds the most mass.
	if top := tr.TopK(1); top[0].Vertex != 0 {
		t.Fatalf("top vertex = %d, want the source", top[0].Vertex)
	}
	if tr.TopK(0) != nil || len(tr.TopK(100)) != 6 {
		t.Fatal("TopK bounds wrong")
	}
	if len(tr.Estimates()) != 6 || tr.Residual(0) > opts.Epsilon {
		t.Fatal("Estimates/Residual wrong")
	}
}

// Forward and reverse trackers are duals: the forward estimate of target v
// from source s equals the reverse (contribution) estimate of s towards v,
// within the combined approximation error.
func TestForwardReverseTrackersAgree(t *testing.T) {
	edges, err := dynppr.GenerateEdges(dynppr.SyntheticConfig{
		Model: dynppr.ModelErdosRenyi, Vertices: 60, Edges: 900, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ensure no dangling vertices: add a cycle over all 60.
	g := dynppr.GraphFromEdges(edges)
	for i := 0; i < 60; i++ {
		_, _ = g.AddEdge(dynppr.VertexID(i), dynppr.VertexID((i+1)%60))
	}
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-7

	const source, target = 3, 40
	fwdTr, err := dynppr.NewForwardTracker(g.Clone(), source, opts)
	if err != nil {
		t.Fatal(err)
	}
	revTr, err := dynppr.NewTracker(g.Clone(), target, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := fwdTr.Estimate(target)
	want := revTr.Estimate(source)
	// Forward error is contribution-weighted (≤ ε·n in the worst case).
	if d := math.Abs(got - want); d > 1e-4 {
		t.Fatalf("duality violated: forward %v vs reverse %v (diff %v)", got, want, d)
	}
}

func TestForwardTrackerApplyBatch(t *testing.T) {
	g := cycleGraph(8)
	opts := dynppr.DefaultOptions()
	opts.Epsilon = 1e-8
	tr, err := dynppr.NewForwardTracker(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Estimate(4)
	// A shortcut 0 -> 4 raises the probability that a walk from 0 ever
	// reaches 4 before terminating, so its estimate must rise.
	res := tr.ApplyBatch(dynppr.Batch{
		{U: 0, V: 4, Op: dynppr.Insert},
		{U: 0, V: 4, Op: dynppr.Insert}, // duplicate skipped
		{U: 1, V: 9, Op: dynppr.Delete}, // missing, skipped
	})
	if res.Applied != 1 || res.Skipped != 2 || res.Latency <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	if !tr.Converged() {
		t.Fatal("not converged after batch")
	}
	if after := tr.Estimate(4); after <= before {
		t.Fatalf("estimate of 4 should rise after shortcut: %v -> %v", before, after)
	}
	// Now cut 6 -> 7: vertex 7 loses its only incoming edge, so walks from 0
	// can no longer reach it and its estimate must collapse.
	before7 := tr.Estimate(7)
	res = tr.ApplyBatch(dynppr.Batch{{U: 6, V: 7, Op: dynppr.Delete}})
	if res.Applied != 1 || !tr.Converged() {
		t.Fatalf("delete batch failed: %+v", res)
	}
	if after7 := tr.Estimate(7); after7 >= before7 || after7 > 0.05 {
		t.Fatalf("estimate of cut-off vertex should collapse: %v -> %v", before7, after7)
	}
}
