package dynppr

import (
	"fmt"
	"time"

	"dynppr/internal/fp"
	"dynppr/internal/graph"
	"dynppr/internal/push"
)

// TrackerSet maintains PPR vectors for several source vertices over one
// shared dynamic graph. This is the "general case" the paper defers to prior
// work: a non-unit personalization vector is served by maintaining multiple
// unit-vector PPR states. The graph is mutated once per update; every state
// is notified and then pushed, with the per-source pushes themselves running
// concurrently when the set is large.
//
// With Options.Engine set to EngineDeterministic the whole set is
// reproducible: each source's push is bit-identical at any
// Options.Parallelism, and since the per-source states are independent, the
// concurrency of the cross-source fan-out cannot perturb results either.
//
// Like Tracker, a TrackerSet is not safe for concurrent use: ApplyBatch and
// Estimate must not overlap. When queries need to run concurrently with the
// update stream, use a Service instead — it maintains the same per-source
// states but serves reads lock-free from converged snapshots while writes
// flow through a serialized pipeline.
type TrackerSet struct {
	g       *Graph
	opts    Options
	sources []VertexID
	states  []*push.State
	engines []push.Engine
	// setWorkers bounds how many sources are pushed concurrently.
	setWorkers int
	// touchedBuf is per-batch scratch recycled across ApplyBatch calls.
	touchedBuf []graph.VertexID
}

// validateSources rejects empty and duplicate source lists. Shared by
// NewTrackerSet and NewService.
func validateSources(sources []VertexID) error {
	if len(sources) == 0 {
		return fmt.Errorf("dynppr: at least one source is required")
	}
	seen := make(map[VertexID]struct{}, len(sources))
	for _, s := range sources {
		if _, dup := seen[s]; dup {
			return fmt.Errorf("dynppr: duplicate source %d", s)
		}
		seen[s] = struct{}{}
	}
	return nil
}

// applyBatchNotify applies b to g one update at a time and notifies every
// state after each effective mutation, so the invariant restore reads the
// out-degree of the intermediate graph exactly as Algorithm 1 requires. It
// returns the number of effective updates and their source endpoints,
// appended to dst (callers on the steady-state write path pass a recycled
// buffer so the per-batch touched list allocates nothing). Shared by
// TrackerSet.ApplyBatch and the Service write pipeline.
func applyBatchNotify(g *Graph, states []*push.State, b Batch, dst []graph.VertexID) (applied int, touched []graph.VertexID) {
	touched = dst
	if touched == nil {
		// Keep "no effective updates" distinct from the engines' nil
		// "full scan" request.
		touched = make([]graph.VertexID, 0, len(b))
	}
	for _, u := range b {
		switch u.Op {
		case Insert:
			added, err := g.AddEdge(u.U, u.V)
			if err != nil || !added {
				continue
			}
		case Delete:
			if err := g.RemoveEdge(u.U, u.V); err != nil {
				continue
			}
		default:
			continue
		}
		applied++
		touched = append(touched, u.U)
		for _, st := range states {
			if u.Op == Insert {
				st.NoteInserted(u.U, u.V)
			} else {
				st.NoteDeleted(u.U, u.V)
			}
		}
	}
	return applied, touched
}

// NewTrackerSet builds one tracker per source over the shared graph g and
// brings each to convergence. Duplicate sources are rejected.
func NewTrackerSet(g *Graph, sources []VertexID, opts Options) (*TrackerSet, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := validateSources(sources); err != nil {
		return nil, err
	}
	ts := &TrackerSet{
		g:          g,
		opts:       opts,
		sources:    append([]VertexID(nil), sources...),
		setWorkers: fp.DefaultWorkers(),
	}
	for _, s := range sources {
		engine, err := opts.buildEngine()
		if err != nil {
			return nil, err
		}
		st, err := push.NewState(g, s, push.Config{Alpha: opts.Alpha, Epsilon: opts.Epsilon})
		if err != nil {
			return nil, err
		}
		ts.states = append(ts.states, st)
		ts.engines = append(ts.engines, engine)
	}
	// Cold-start every source.
	fp.For(len(ts.states), ts.setWorkers, func(i int) {
		ts.engines[i].Run(ts.states[i], []graph.VertexID{ts.sources[i]})
	})
	return ts, nil
}

// Sources returns the tracked source vertices in construction order.
func (ts *TrackerSet) Sources() []VertexID {
	return append([]VertexID(nil), ts.sources...)
}

// Graph returns the shared graph.
func (ts *TrackerSet) Graph() *Graph { return ts.g }

// Estimate returns the PPR estimate of v with respect to the given source.
// It returns an error wrapping ErrUnknownSource when the source is not
// tracked, so errors.Is works identically across TrackerSet and Service.
func (ts *TrackerSet) Estimate(source, v VertexID) (float64, error) {
	for i, s := range ts.sources {
		if s == source {
			return ts.states[i].Estimate(v), nil
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrUnknownSource, source)
}

// ApplyBatch applies the batch to the shared graph once, restores the
// invariant of every tracked source, and pushes each source to convergence.
func (ts *TrackerSet) ApplyBatch(b Batch) BatchResult {
	start := time.Now()
	applied, touched := applyBatchNotify(ts.g, ts.states, b, ts.touchedBuf[:0])
	ts.touchedBuf = touched
	var pushes int64
	fp.For(len(ts.states), ts.setWorkers, func(i int) {
		ts.engines[i].Run(ts.states[i], touched)
	})
	// Between batches is a quiescent point (no engine is reading): fold
	// grown delta segments back into the CSR base.
	ts.g.MaybeCompact()
	for _, st := range ts.states {
		pushes += st.Counters.Snapshot().Pushes
	}
	return BatchResult{
		Applied: applied,
		Skipped: len(b) - applied,
		Latency: time.Since(start),
		Pushes:  pushes,
	}
}

// Converged reports whether every tracked source is within Epsilon.
func (ts *TrackerSet) Converged() bool {
	for _, st := range ts.states {
		if !st.Converged() {
			return false
		}
	}
	return true
}
